package sim

import (
	"testing"
)

// computeTask burns ops compute operations.
func computeTask(ops int64) func(*CPU) {
	return func(c *CPU) { c.Compute(ops) }
}

// memoryTask streams over a region with bulk NT reads, as the paper's
// memory thread does.
func memoryTask(reg Region) func(*CPU) {
	return func(c *CPU) {
		pipe := c.NewPipe(2, 1, StateMemory)
		line := uint64(128)
		for a := reg.Base; a < reg.End(); a += line {
			pipe.Access(a, int(line), false, HintNonTemporal)
		}
		pipe.Drain()
	}
}

func TestSingleThreadCompute(t *testing.T) {
	m := MustNew(PentiumD8300())
	st := m.Run(computeTask(100000))
	// Solo compute: ops * CPI cycles, within rounding.
	if st.Cycles < 100000 || st.Cycles > 101000 {
		t.Fatalf("solo compute took %d cycles, want ~100000", st.Cycles)
	}
}

func TestComputeComputeOverlapSavesTime(t *testing.T) {
	cfg := PentiumD8300()
	m := MustNew(cfg)
	serial := m.Run(func(c *CPU) {
		c.Compute(500000)
		c.Compute(500000)
	}).Cycles
	m.ResetTiming()
	par := m.Run(computeTask(500000), computeTask(500000)).Cycles

	saving := 1 - float64(par)/float64(serial)
	// Fig. 6a: overlapping two compute tasks saves 20–30%.
	if saving < 0.15 || saving > 0.35 {
		t.Fatalf("comp∥comp saving %.0f%% (serial=%d par=%d), want 20–30%%", saving*100, serial, par)
	}
}

func TestMemoryMemoryOverlapHurts(t *testing.T) {
	cfg := PentiumD8300()
	m := MustNew(cfg)
	a := m.AS.Alloc("a", 4<<20)
	b := m.AS.Alloc("b", 4<<20)

	serial := m.Run(func(c *CPU) {
		memoryTask(a)(c)
		memoryTask(b)(c)
	}).Cycles
	m.ColdStart()
	par := m.Run(memoryTask(a), memoryTask(b)).Cycles

	ratio := float64(par) / float64(serial)
	// Fig. 6b: overlapping two bulk memory operations is ~6% slower.
	if ratio < 1.01 || ratio > 1.20 {
		t.Fatalf("mem∥mem ratio %.3f (serial=%d par=%d), want ~1.06", ratio, serial, par)
	}
}

func TestComputeMemoryOverlapSavesTime(t *testing.T) {
	cfg := PentiumD8300()
	m := MustNew(cfg)
	a := m.AS.Alloc("a", 4<<20)

	// Size the compute so the two halves are comparable.
	memSolo := m.Run(memoryTask(a)).Cycles
	m.ColdStart()
	ops := int64(memSolo)

	serial := m.Run(func(c *CPU) {
		c.Compute(ops)
		memoryTask(a)(c)
	}).Cycles
	m.ColdStart()
	par := m.Run(computeTask(ops), memoryTask(a)).Cycles

	saving := 1 - float64(par)/float64(serial)
	// Fig. 6c: overlapping computation with memory saves 20–30%.
	if saving < 0.15 || saving > 0.40 {
		t.Fatalf("comp∥mem saving %.0f%% (serial=%d par=%d), want 20–30%%", saving*100, serial, par)
	}
}

func TestPauseSpinHurtsSiblingCompute(t *testing.T) {
	cfg := PentiumD8300()
	m := MustNew(cfg)
	solo := m.Run(computeTask(1000000)).Cycles

	m.ResetTiming()
	ev := m.NewEvent()
	fired := false
	with := m.Run(
		func(c *CPU) {
			c.Compute(1000000)
			fired = true
			c.Signal(ev)
		},
		func(c *CPU) {
			c.Wait(ev, PolicyPause, func() bool { return fired })
		},
	).ProcCycles[0]

	ratio := float64(with) / float64(solo)
	// Fig. 8a: a PAUSE spinner greatly impacts sibling compute.
	if ratio < 1.15 || ratio > 1.6 {
		t.Fatalf("compute vs PAUSE spinner ratio %.2f, want ~1.35", ratio)
	}
}

func TestMwaitSleepDoesNotHurtSibling(t *testing.T) {
	cfg := PentiumD8300()
	m := MustNew(cfg)
	solo := m.Run(computeTask(1000000)).Cycles

	m.ResetTiming()
	ev := m.NewEvent()
	fired := false
	with := m.Run(
		func(c *CPU) {
			c.Compute(1000000)
			fired = true
			c.Signal(ev)
		},
		func(c *CPU) {
			c.Wait(ev, PolicyMwait, func() bool { return fired })
		},
	).ProcCycles[0]

	ratio := float64(with) / float64(solo)
	// Fig. 8b: MONITOR/MWAIT has negligible impact.
	if ratio > 1.03 {
		t.Fatalf("compute vs MWAIT sleeper ratio %.2f, want ~1.00", ratio)
	}
}

func TestPauseSpinNegligibleForSiblingMemory(t *testing.T) {
	cfg := PentiumD8300()
	m := MustNew(cfg)
	a := m.AS.Alloc("a", 4<<20)
	solo := m.Run(memoryTask(a)).Cycles

	m.ColdStart()
	ev := m.NewEvent()
	fired := false
	with := m.Run(
		func(c *CPU) {
			memoryTask(a)(c)
			fired = true
			c.Signal(ev)
		},
		func(c *CPU) {
			c.Wait(ev, PolicyPause, func() bool { return fired })
		},
	).ProcCycles[0]

	ratio := float64(with) / float64(solo)
	if ratio > 1.10 {
		t.Fatalf("memory vs PAUSE spinner ratio %.2f, want ~1.00", ratio)
	}
}

func TestWaitDispatchLatencies(t *testing.T) {
	cfg := PentiumD8300()
	for _, tc := range []struct {
		policy   WaitPolicy
		min, max uint64
	}{
		{PolicyPause, 100, 400},
		{PolicyMwait, 500, 1500},
		{PolicyOS, 20000, 60000},
	} {
		m := MustNew(cfg)
		ev := m.NewEvent()
		fired := false
		var notifiedAt, wokeAt uint64
		m.Run(
			func(c *CPU) {
				c.Compute(5000)
				fired = true
				notifiedAt = c.Now()
				c.Signal(ev)
			},
			func(c *CPU) {
				c.Wait(ev, tc.policy, func() bool { return fired })
				wokeAt = c.Now()
			},
		)
		lat := wokeAt - notifiedAt
		if lat < tc.min || lat > tc.max {
			t.Errorf("%v dispatch latency %d cycles, want [%d,%d]", tc.policy, lat, tc.min, tc.max)
		}
	}
}

func TestWaitConditionAlreadyTrue(t *testing.T) {
	m := MustNew(PentiumD8300())
	ev := m.NewEvent()
	m.Run(func(c *CPU) {
		before := c.Now()
		spent := c.Wait(ev, PolicyMwait, func() bool { return true })
		if spent > 5 || c.Now()-before > 5 {
			t.Errorf("already-true wait cost %d cycles", spent)
		}
	}, func(c *CPU) {})
}

func TestDeadlockDetection(t *testing.T) {
	m := MustNew(PentiumD8300())
	ev := m.NewEvent()
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	m.Run(
		func(c *CPU) { c.Wait(ev, PolicyMwait, func() bool { return false }) },
		func(c *CPU) { c.Wait(ev, PolicyMwait, func() bool { return false }) },
	)
}

func TestSingleThreadWaitPanics(t *testing.T) {
	m := MustNew(PentiumD8300())
	ev := m.NewEvent()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unfulfillable single-thread wait")
		}
	}()
	m.Run(func(c *CPU) { c.Wait(ev, PolicyPause, func() bool { return false }) })
}

func TestRunDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m := MustNew(PentiumD8300())
		a := m.AS.Alloc("a", 1<<20)
		st := m.Run(computeTask(200000), memoryTask(a))
		return st.ProcCycles[0], st.ProcCycles[1]
	}
	a0, b0 := run()
	for i := 0; i < 3; i++ {
		a, b := run()
		if a != a0 || b != b0 {
			t.Fatalf("nondeterministic run: (%d,%d) vs (%d,%d)", a, b, a0, b0)
		}
	}
}

func TestVirtualTimeMonotone(t *testing.T) {
	m := MustNew(PentiumD8300())
	a := m.AS.Alloc("a", 1<<20)
	m.Run(func(c *CPU) {
		prev := c.Now()
		for i := 0; i < 1000; i++ {
			c.Compute(10)
			c.Read(a.Base+uint64(i*128), 8, HintNone)
			if c.Now() < prev {
				t.Errorf("clock went backwards: %d < %d", c.Now(), prev)
				return
			}
			prev = c.Now()
		}
	})
}

func TestRunStatsAccounting(t *testing.T) {
	m := MustNew(PentiumD8300())
	st := m.Run(computeTask(10000))
	if st.ComputeCycles[0] == 0 {
		t.Fatal("compute cycles not accounted")
	}
	if st.ProcCycles[0] != st.Cycles {
		t.Fatalf("single proc: ProcCycles %d != Cycles %d", st.ProcCycles[0], st.Cycles)
	}
}

func TestMachineResetTiming(t *testing.T) {
	m := MustNew(PentiumD8300())
	a := m.AS.Alloc("a", 1<<20)
	m.Run(memoryTask(a))
	if m.Mem.Bus.Stats.Bytes == 0 {
		t.Fatal("no bus traffic recorded")
	}
	m.ResetTiming()
	if m.Mem.Bus.Stats.Bytes != 0 || m.Mem.Bus.BusyUntil() != 0 {
		t.Fatal("ResetTiming left bus state")
	}
	// Caches stay warm after ResetTiming (the most recent NT lines are
	// still resident; earlier ones were recycled through the NT ways).
	last := a.End() - 128
	if !m.Mem.L2.Contains(last) {
		t.Fatal("ResetTiming flushed caches")
	}
	m.ColdStart()
	if m.Mem.L2.Contains(last) {
		t.Fatal("ColdStart kept caches warm")
	}
}

func TestRunZeroOrTooManyThreadsPanics(t *testing.T) {
	m := MustNew(PentiumD8300())
	for _, fns := range [][]func(*CPU){
		{},
		{func(*CPU) {}, func(*CPU) {}, func(*CPU) {}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Run with %d threads did not panic", len(fns))
				}
			}()
			m.Run(fns...)
		}()
	}
}

func TestIdleAdvancesClock(t *testing.T) {
	m := MustNew(PentiumD8300())
	m.Run(func(c *CPU) {
		c.Idle(12345)
		if c.Now() != 12345 {
			t.Errorf("Idle: now=%d", c.Now())
		}
	})
}

func TestEpochContinuesAcrossRuns(t *testing.T) {
	m := MustNew(PentiumD8300())
	m.Run(computeTask(1000))
	var start uint64
	m.Run(func(c *CPU) { start = c.Now() })
	if start < 1000 {
		t.Fatalf("second run started at %d, want >= 1000", start)
	}
}
