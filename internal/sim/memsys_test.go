package sim

import (
	"strings"
	"testing"
)

func TestWriteCombiningMergesSequentialStores(t *testing.T) {
	ms := NewMemSystem(PentiumD8300())
	// 16 sequential 8-byte NT stores fill exactly one 128-byte line:
	// one full-line flush, no partials.
	for i := 0; i < 16; i++ {
		r := ms.Access(0, 0, uint64(4096+i*8), 8, true, HintNonTemporal)
		if r.Level != LevelWC {
			t.Fatalf("NT store level %v", r.Level)
		}
	}
	if ms.Stats.WCFlushes != 1 || ms.Stats.WCPartial != 0 {
		t.Fatalf("flushes=%d partial=%d, want 1 full flush", ms.Stats.WCFlushes, ms.Stats.WCPartial)
	}
	if ms.Bus.Stats.Bytes != 128 {
		t.Fatalf("bus bytes %d, want 128", ms.Bus.Stats.Bytes)
	}
}

func TestWriteCombiningPartialFlushOnLineSwitch(t *testing.T) {
	ms := NewMemSystem(PentiumD8300())
	ms.Access(0, 0, 4096, 8, true, HintNonTemporal)
	// A store to a different line flushes the open buffer partially.
	ms.Access(0, 0, 8192, 8, true, HintNonTemporal)
	if ms.Stats.WCFlushes != 1 || ms.Stats.WCPartial != 1 {
		t.Fatalf("flushes=%d partial=%d", ms.Stats.WCFlushes, ms.Stats.WCPartial)
	}
}

func TestDrainWCFlushesOpenBuffer(t *testing.T) {
	ms := NewMemSystem(PentiumD8300())
	ms.Access(0, 0, 4096, 8, true, HintNonTemporal)
	if ms.Stats.WCFlushes != 0 {
		t.Fatal("premature flush")
	}
	done := ms.DrainWC(0, 100)
	if ms.Stats.WCFlushes != 1 {
		t.Fatal("drain did not flush")
	}
	if done < 100 {
		t.Fatalf("drain completed at %d", done)
	}
	// Draining again is a no-op.
	ms.DrainWC(0, done)
	if ms.Stats.WCFlushes != 1 {
		t.Fatal("double flush")
	}
}

func TestWCBuffersPerContext(t *testing.T) {
	ms := NewMemSystem(PentiumD8300())
	// Interleaved NT stores from both contexts to different lines must
	// not flush each other.
	ms.Access(0, 0, 4096, 8, true, HintNonTemporal)
	ms.Access(1, 0, 8192, 8, true, HintNonTemporal)
	if ms.Stats.WCFlushes != 0 {
		t.Fatal("cross-context WC interference")
	}
}

func TestPageWalkerSerialises(t *testing.T) {
	ms := NewMemSystem(PentiumD8300())
	// Two TLB misses requested at the same instant: the second walk
	// starts after the first finishes.
	r1 := ms.Access(0, 0, 0x100000, 8, false, HintNone)
	r2 := ms.Access(0, 0, 0x900000, 8, false, HintNone)
	if ms.Stats.TLBWalks != 2 {
		t.Fatalf("walks %d", ms.Stats.TLBWalks)
	}
	cfg := PentiumD8300()
	if r2.Done < r1.Done-cfg.DRAMLat && r2.Done < 2*cfg.TLBWalkLat {
		t.Fatalf("second walk not serialised: %d vs %d", r1.Done, r2.Done)
	}
}

func TestRFOOnStoreMiss(t *testing.T) {
	ms := NewMemSystem(PentiumD8300())
	r := ms.Access(0, 0, 4096, 8, true, HintNone)
	if r.Level != LevelMem {
		t.Fatalf("store miss level %v", r.Level)
	}
	// The RFO read moved a full line over the bus.
	if ms.Bus.Stats.Bytes != uint64(ms.cfg.L2Line) {
		t.Fatalf("RFO moved %d bytes", ms.Bus.Stats.Bytes)
	}
	// The line is now dirty: evicting it writes back.
	if !ms.L2.Contains(4096) {
		t.Fatal("store miss did not fill")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := PentiumD8300()
	ms := NewMemSystem(cfg)
	// Dirty one set's line, then stream enough temporal lines through
	// the same set to evict it.
	setStride := uint64(cfg.L2Bytes / cfg.L2Ways) // lines mapping to the same set
	ms.Access(0, 0, 0, 8, true, HintNone)
	before := ms.Bus.Stats.Bytes
	for i := 1; i <= cfg.L2Ways; i++ {
		ms.Access(0, 0, uint64(i)*setStride, 8, false, HintNone)
	}
	if ms.L2.Contains(0) {
		t.Fatal("dirty line survived full-set pressure")
	}
	// Fills + one writeback: more than fills alone.
	fills := uint64(cfg.L2Ways) * uint64(cfg.L2Line)
	if ms.Bus.Stats.Bytes-before <= fills {
		t.Fatalf("no writeback traffic: %d", ms.Bus.Stats.Bytes-before)
	}
}

func TestAccessZeroSizePanics(t *testing.T) {
	ms := NewMemSystem(PentiumD8300())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero-size access")
		}
	}()
	ms.Access(0, 0, 0, 0, false, HintNone)
}

func TestMultiLineAccessSplits(t *testing.T) {
	ms := NewMemSystem(PentiumD8300())
	// A 256-byte read spans multiple L1 lines and both halves of two
	// L2 lines.
	ms.Access(0, 0, 4096, 256, false, HintNone)
	if ms.Stats.Accesses != 4 { // 256/64
		t.Fatalf("chunked into %d accesses, want 4", ms.Stats.Accesses)
	}
}

func TestImprovedStreamValidatesAndHelps(t *testing.T) {
	cfg := ImprovedStream()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.TLBEntries <= PentiumD8300().TLBEntries {
		t.Fatal("improved machine has no bigger TLB")
	}
}

func TestMachineDescribe(t *testing.T) {
	m := MustNew(PentiumD8300())
	d := m.Describe()
	for _, want := range []string{"3.4 GHz", "1024KB", "TLB 64", "6.4 GB/s"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q: %s", want, d)
		}
	}
}

func TestProcStateString(t *testing.T) {
	for s, want := range map[ProcState]string{
		StateIdle: "idle", StateCompute: "compute", StateMemory: "memory",
		StateSpin: "spin", StateSleep: "sleep", StateDone: "done",
	} {
		if s.String() != want {
			t.Fatalf("state %d = %q", s, s.String())
		}
	}
	for p, want := range map[WaitPolicy]string{
		PolicyPause: "pause", PolicyMwait: "mwait", PolicyOS: "os",
	} {
		if p.String() != want {
			t.Fatalf("policy %d = %q", p, p.String())
		}
	}
}

func TestStallUntil(t *testing.T) {
	m := MustNew(PentiumD8300())
	m.Run(func(c *CPU) {
		c.StallUntil(500)
		if c.Now() != 500 {
			t.Errorf("now %d", c.Now())
		}
		c.StallUntil(100) // in the past: no-op
		if c.Now() != 500 {
			t.Errorf("now moved backwards: %d", c.Now())
		}
	})
}

func TestRegionHelpers(t *testing.T) {
	as := NewAddrSpace(4096)
	r := as.Alloc("x", 1000)
	if r.End() != r.Base+1000 {
		t.Fatalf("End %d", r.End())
	}
	if !r.Contains(r.Base+999) || r.Contains(r.Base+1000) {
		t.Fatal("Contains")
	}
}
