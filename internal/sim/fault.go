package sim

import "streamgpp/internal/fault"

// defaultInjector, when set, is attached to every subsequently created
// Machine, mirroring SetDefaultObserver: the CLIs enable fault
// injection once without threading an injector through every
// experiment constructor.
var defaultInjector *fault.Injector

// SetDefaultFaultInjector installs a fault injector onto every Machine
// created afterwards. Pass nil to disable.
func SetDefaultFaultInjector(in *fault.Injector) { defaultInjector = in }

// SetFaultInjector attaches a fault injector to this machine. All
// machine-level fault hooks (latency spikes, dropped wakeups) and the
// executors' hooks draw from it. A nil injector (the default) leaves
// every hook disabled with zero timing effect.
func (m *Machine) SetFaultInjector(in *fault.Injector) { m.flt = in }

// FaultInjector returns the machine's fault injector, or nil.
func (m *Machine) FaultInjector() *fault.Injector { return m.flt }

// WakeupTimeouts returns how many times the engine had to wake a
// sleeper at its wait-budget deadline because every live context was
// asleep (a lost wakeup recovered by timeout). Cumulative across runs;
// only ever non-zero under fault injection.
func (m *Machine) WakeupTimeouts() uint64 { return m.wakeupTimeouts }

// faultSpike charges one injected memory-latency spike to the calling
// context, if the injector fires. Call sites are the scalar blocking
// access and the pipelined drain — shared by the bulk fast path and
// the reference path, so both see the same schedule.
func (c *CPU) faultSpike() {
	in := c.m.flt
	if in == nil {
		return
	}
	if in.Roll(fault.LatencySpike, c.p.now) {
		in.Annotate("sim.mem")
		d := in.SpikeCycles()
		c.p.memCycles += d
		c.p.now += d
	}
}
