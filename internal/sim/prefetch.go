package sim

// Prefetcher models the Pentium 4 hardware stream prefetcher: a small
// table of stream detectors that train on consecutive cache-line
// misses and then run ahead of the demand stream. Two properties drive
// the paper's results and are reproduced here:
//
//   - It only helps ascending sequential miss streams. Random gathers
//     never train it (§III-A: random bandwidth is latency-bound).
//   - The detector table is tiny. When the regular-code baseline walks
//     several arrays in one loop, their interleaved misses evict each
//     other's detectors and prefetching collapses — which is why the
//     paper's bulk, one-stream-at-a-time gathers beat intermixed loads
//     even though all accesses are sequential (§IV-B).
type Prefetcher struct {
	cfg     Config
	streams []pfStream
	tick    uint64

	// pending maps a line address to the bus completion time of an
	// in-flight or completed prefetch. Entries are consumed by the
	// demand access that hits them.
	pending map[Addr]uint64

	Stats PFStats
}

type pfStream struct {
	nextLine Addr
	count    int
	valid    bool
	lru      uint64
}

// PFStats counts prefetch activity.
type PFStats struct {
	Trained   uint64
	Issued    uint64
	UsefulHit uint64
	Evicted   uint64
}

// NewPrefetcher returns a prefetcher with cfg.PFStreams detectors.
func NewPrefetcher(cfg Config) *Prefetcher {
	return &Prefetcher{cfg: cfg, streams: make([]pfStream, cfg.PFStreams), pending: make(map[Addr]uint64)}
}

// Advance notifies the prefetcher of a demand access to the given line
// (wasMiss true for a demand miss, false for a hit on a prefetched
// line). A detector whose frontier matches advances and — once trained
// — keeps the stream PFDepth lines ahead. A miss with no matching
// detector allocates one by LRU: this is where intermixed streams
// thrash each other out, and because the frontier lives in the
// detector, an evicted stream stops prefetching until it retrains —
// no stream survives the table pressure for free.
func (p *Prefetcher) Advance(ctx int, bus *Bus, now uint64, line Addr, lineSize int, wasMiss bool) {
	if len(p.streams) == 0 {
		return
	}
	p.tick++
	// Find a detector expecting this line.
	for i := range p.streams {
		s := &p.streams[i]
		if s.valid && s.nextLine == line {
			s.count++
			s.nextLine = line + uint64(lineSize)
			s.lru = p.tick
			if s.count >= p.cfg.PFTrain {
				if s.count == p.cfg.PFTrain {
					p.Stats.Trained++
				}
				p.issue(ctx, bus, now, s.nextLine, lineSize)
			}
			return
		}
	}
	if !wasMiss {
		// A prefetch hit from a stream whose detector is gone: the
		// stream has died; it must retrain through misses.
		return
	}
	// Allocate a detector by LRU.
	victim, best := 0, uint64(1<<64-1)
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			victim = i
			break
		}
		if s.lru < best {
			best, victim = s.lru, i
		}
	}
	if p.streams[victim].valid {
		p.Stats.Evicted++
	}
	p.streams[victim] = pfStream{nextLine: line + uint64(lineSize), count: 1, valid: true, lru: p.tick}
}

// issue prefetches the run of PFDepth lines starting at from, skipping
// lines already in flight.
func (p *Prefetcher) issue(ctx int, bus *Bus, now uint64, from Addr, lineSize int) {
	for i := 0; i < p.cfg.PFDepth; i++ {
		line := from + uint64(i*lineSize)
		if _, ok := p.pending[line]; ok {
			continue
		}
		done := bus.Acquire(ctx, now, line, lineSize, xferFill)
		p.pending[line] = done
		p.Stats.Issued++
	}
}

// Claim checks whether line has an in-flight or completed prefetch and
// removes it, returning its arrival time.
func (p *Prefetcher) Claim(line Addr) (arrival uint64, ok bool) {
	if len(p.pending) == 0 {
		return 0, false
	}
	arrival, ok = p.pending[line]
	if ok {
		delete(p.pending, line)
		p.Stats.UsefulHit++
	}
	return arrival, ok
}

// Reset drops all detectors and in-flight prefetches.
func (p *Prefetcher) Reset() {
	for i := range p.streams {
		p.streams[i] = pfStream{}
	}
	p.pending = make(map[Addr]uint64)
}
