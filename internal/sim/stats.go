package sim

import "streamgpp/internal/obs"

// This file gives every simulator counter block uniform
// reset/snapshot/delta semantics, aggregates them into MachineStats,
// and publishes them into an obs.Registry. Back-to-back runs on one
// Machine can now be separated either by resetting counters or by
// subtracting snapshots — previously the counters only accumulated.

// Reset zeroes the counters.
func (s *CacheStats) Reset() { *s = CacheStats{} }

// Delta returns s - prev, for separating back-to-back runs.
func (s CacheStats) Delta(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:       s.Hits - prev.Hits,
		Misses:     s.Misses - prev.Misses,
		NTFills:    s.NTFills - prev.NTFills,
		Evictions:  s.Evictions - prev.Evictions,
		DirtyEvict: s.DirtyEvict - prev.DirtyEvict,
	}
}

// Reset zeroes the counters.
func (s *BusStats) Reset() { *s = BusStats{} }

// Delta returns s - prev.
func (s BusStats) Delta(prev BusStats) BusStats {
	return BusStats{
		Transfers:  s.Transfers - prev.Transfers,
		Bytes:      s.Bytes - prev.Bytes,
		RowHits:    s.RowHits - prev.RowHits,
		RowMisses:  s.RowMisses - prev.RowMisses,
		BusyCycles: s.BusyCycles - prev.BusyCycles,
	}
}

// Reset zeroes the counters.
func (s *TLBStats) Reset() { *s = TLBStats{} }

// Delta returns s - prev.
func (s TLBStats) Delta(prev TLBStats) TLBStats {
	return TLBStats{Hits: s.Hits - prev.Hits, Misses: s.Misses - prev.Misses}
}

// Reset zeroes the counters.
func (s *MemStats) Reset() { *s = MemStats{} }

// Delta returns s - prev.
func (s MemStats) Delta(prev MemStats) MemStats {
	d := MemStats{
		Accesses:  s.Accesses - prev.Accesses,
		TLBWalks:  s.TLBWalks - prev.TLBWalks,
		WCFlushes: s.WCFlushes - prev.WCFlushes,
		WCPartial: s.WCPartial - prev.WCPartial,
	}
	for i := range s.ByLevel {
		d.ByLevel[i] = s.ByLevel[i] - prev.ByLevel[i]
	}
	return d
}

// Reset zeroes the counters.
func (s *PFStats) Reset() { *s = PFStats{} }

// Delta returns s - prev.
func (s PFStats) Delta(prev PFStats) PFStats {
	return PFStats{
		Trained:   s.Trained - prev.Trained,
		Issued:    s.Issued - prev.Issued,
		UsefulHit: s.UsefulHit - prev.UsefulHit,
		Evicted:   s.Evicted - prev.Evicted,
	}
}

// MachineStats is every counter block of the machine frozen at one
// instant.
type MachineStats struct {
	L1, L2 CacheStats
	TLB    TLBStats
	Bus    BusStats
	Mem    MemStats
	PF     [2]PFStats
	Cov    [2]CoverageStats
	BW     [2]BWStats
}

// StatsSnapshot freezes all machine counters.
func (m *Machine) StatsSnapshot() MachineStats {
	return MachineStats{
		L1:  m.Mem.L1.Stats,
		L2:  m.Mem.L2.Stats,
		TLB: m.Mem.TLB.Stats,
		Bus: m.Mem.Bus.Stats,
		Mem: m.Mem.Stats,
		PF:  [2]PFStats{m.Mem.PF[0].Stats, m.Mem.PF[1].Stats},
		Cov: m.Cov,
		BW:  m.Mem.BW,
	}
}

// Delta returns s - prev, so one snapshot pair brackets one run.
func (s MachineStats) Delta(prev MachineStats) MachineStats {
	return MachineStats{
		L1:  s.L1.Delta(prev.L1),
		L2:  s.L2.Delta(prev.L2),
		TLB: s.TLB.Delta(prev.TLB),
		Bus: s.Bus.Delta(prev.Bus),
		Mem: s.Mem.Delta(prev.Mem),
		PF:  [2]PFStats{s.PF[0].Delta(prev.PF[0]), s.PF[1].Delta(prev.PF[1])},
		Cov: [2]CoverageStats{s.Cov[0].Delta(prev.Cov[0]), s.Cov[1].Delta(prev.Cov[1])},
		BW:  [2]BWStats{s.BW[0].Delta(prev.BW[0]), s.BW[1].Delta(prev.BW[1])},
	}
}

// CovTotal sums both contexts' coverage counters.
func (s MachineStats) CovTotal() CoverageStats {
	t := s.Cov[0]
	t.Add(s.Cov[1])
	return t
}

// BWTotal sums both contexts' bandwidth attribution.
func (s MachineStats) BWTotal() BWStats {
	t := s.BW[0]
	t.Add(s.BW[1])
	return t
}

// ResetStats zeroes every machine counter without touching timing state
// or cache/TLB contents — the missing piece that let back-to-back runs
// on one Machine conflate their counters.
func (m *Machine) ResetStats() {
	m.Mem.L1.Stats.Reset()
	m.Mem.L2.Stats.Reset()
	m.Mem.TLB.Stats.Reset()
	m.Mem.Bus.Stats.Reset()
	m.Mem.Stats.Reset()
	for i := range m.Mem.PF {
		m.Mem.PF[i].Stats.Reset()
	}
	for i := range m.Cov {
		m.Cov[i].Reset()
		m.Mem.BW[i].Reset()
	}
}

// Publish writes the snapshot into the registry as sim.* gauges.
func (s MachineStats) Publish(r *obs.Registry) {
	cache := func(prefix string, cs CacheStats) {
		r.Gauge(prefix + ".hits").Set(float64(cs.Hits))
		r.Gauge(prefix + ".misses").Set(float64(cs.Misses))
		r.Gauge(prefix + ".nt_fills").Set(float64(cs.NTFills))
		r.Gauge(prefix + ".evictions").Set(float64(cs.Evictions))
		r.Gauge(prefix + ".dirty_evictions").Set(float64(cs.DirtyEvict))
	}
	cache("sim.l1", s.L1)
	cache("sim.l2", s.L2)
	r.Gauge("sim.tlb.hits").Set(float64(s.TLB.Hits))
	r.Gauge("sim.tlb.misses").Set(float64(s.TLB.Misses))
	r.Gauge("sim.tlb.walks").Set(float64(s.Mem.TLBWalks))
	r.Gauge("sim.bus.transfers").Set(float64(s.Bus.Transfers))
	r.Gauge("sim.bus.bytes").Set(float64(s.Bus.Bytes))
	r.Gauge("sim.bus.row_hits").Set(float64(s.Bus.RowHits))
	r.Gauge("sim.bus.row_misses").Set(float64(s.Bus.RowMisses))
	r.Gauge("sim.bus.busy_cycles").Set(float64(s.Bus.BusyCycles))
	r.Gauge("sim.mem.accesses").Set(float64(s.Mem.Accesses))
	r.Gauge("sim.mem.wc_flushes").Set(float64(s.Mem.WCFlushes))
	r.Gauge("sim.mem.wc_partial").Set(float64(s.Mem.WCPartial))
	for lvl, n := range s.Mem.ByLevel {
		r.Gauge("sim.mem.served." + Level(lvl).String()).Set(float64(n))
	}
	for i, pf := range s.PF {
		prefix := []string{"sim.pf0", "sim.pf1"}[i]
		r.Gauge(prefix + ".trained").Set(float64(pf.Trained))
		r.Gauge(prefix + ".issued").Set(float64(pf.Issued))
		r.Gauge(prefix + ".useful_hits").Set(float64(pf.UsefulHit))
		r.Gauge(prefix + ".evicted").Set(float64(pf.Evicted))
	}

	// Fast-path coverage and per-level bandwidth attribution
	// (coverage.go). Every key is always published, even at zero, so
	// ledger rows carry a deterministic key set.
	cov := s.CovTotal()
	r.Gauge("coverage.fast_accesses").Set(float64(cov.FastAccesses))
	r.Gauge("coverage.slow_accesses").Set(float64(cov.SlowAccesses))
	r.Gauge("coverage.batched_iters").Set(float64(cov.BatchedIters))
	r.Gauge("coverage.fastpath_pct").Set(cov.FastPct())
	for _, b := range BailReasons() {
		r.Gauge("coverage.bail." + b.String()).Set(float64(cov.Bails[b]))
	}
	for i := range s.BW {
		prefix := []string{"bw.ctx0.", "bw.ctx1."}[i]
		for lvl := range s.BW[i].Bytes {
			key := prefix + LevelKey(Level(lvl))
			r.Gauge(key + ".bytes").Set(float64(s.BW[i].Bytes[lvl]))
			r.Gauge(key + ".cycles").Set(float64(s.BW[i].Cycles[lvl]))
		}
		r.Gauge(prefix + "tlb.walk_cycles").Set(float64(s.BW[i].TLBWalkCycles))
	}
	bw := s.BWTotal()
	var total uint64
	for lvl := range bw.Bytes {
		r.Gauge("bw." + LevelKey(Level(lvl)) + ".bytes").Set(float64(bw.Bytes[lvl]))
		r.Gauge("bw." + LevelKey(Level(lvl)) + ".cycles").Set(float64(bw.Cycles[lvl]))
		total += bw.Bytes[lvl]
	}
	r.Gauge("bw.total.bytes").Set(float64(total))
	r.Gauge("bw.tlb.walk_cycles").Set(float64(bw.TLBWalkCycles))
}

// defaultObserver, when set, is attached to every subsequently created
// Machine. It exists for tools (cmd/streamtrace) that need to observe
// machines created deep inside app packages; set it from one goroutine
// before any machine is built.
var defaultObserver *obs.Registry

// SetDefaultObserver installs a registry onto every Machine created
// after this call (nil turns it off again).
func SetDefaultObserver(r *obs.Registry) { defaultObserver = r }

// SetObserver attaches a metrics registry to this machine. The SVM bulk
// operations, the work queue and the executors all discover it through
// the machine and record into it; nil (the default) disables
// recording.
func (m *Machine) SetObserver(r *obs.Registry) { m.obs = r }

// Observer returns the attached registry, or nil.
func (m *Machine) Observer() *obs.Registry { return m.obs }
