package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// fuzzOp is one step of a scripted workload. The script is generated
// from the fuzz seed BEFORE either machine runs, so the fast and
// reference executions replay byte-for-byte the same access sequence.
type fuzzOp struct {
	kind    int // 0 bulk, 1 loop, 2 indexed, 3 scalar, 4 compute
	n       int
	refs    []BulkRef
	ops     int64
	overlap uint64
	idx     []int  // indexed op: record numbers
	rec     int    // indexed op: record stride in bytes
	addrs   []Addr // scalar op
	writes  []bool // scalar op
	compute int64
}

// fuzzRefs draws 1..4 bulk refs with adversarial shapes: misaligned
// bases, field sizes from 1 byte to beyond a cache line, strides from
// 0 (scatter-add style) to page-crossing, mixed hints and writes.
func fuzzRefs(rng *rand.Rand, base Addr) []BulkRef {
	nrefs := 1 + rng.Intn(4)
	refs := make([]BulkRef, nrefs)
	for i := range refs {
		hint := HintNone
		if rng.Intn(3) == 0 {
			hint = HintNonTemporal
		}
		refs[i] = BulkRef{
			Base:   base + Addr(rng.Intn(4<<20)),
			Size:   1 + rng.Intn(80),
			Stride: rng.Intn(130),
			Write:  rng.Intn(3) == 0,
			Hint:   hint,
		}
	}
	return refs
}

// fuzzIndex draws an index vector in one of svm's real shapes: a pure
// random permutation (no runs), a banded FEM-like pattern (short
// runs), or mostly-sequential with glitches (long runs) — the three
// regimes the indexed run coalescer must handle.
func fuzzIndex(rng *rand.Rand, n int) []int {
	idx := make([]int, n)
	switch rng.Intn(3) {
	case 0:
		for i, v := range rng.Perm(n) {
			idx[i] = v
		}
	case 1:
		for i := range idx {
			idx[i] = i + rng.Intn(17) - 8
			if idx[i] < 0 {
				idx[i] = 0
			}
			if idx[i] >= n {
				idx[i] = n - 1
			}
		}
	default:
		for i := range idx {
			idx[i] = i
		}
		for g := 0; g < n/10; g++ {
			idx[rng.Intn(n)] = rng.Intn(n)
		}
	}
	return idx
}

// buildFuzzScript turns a seed into a bounded workload script.
func buildFuzzScript(rng *rand.Rand) []fuzzOp {
	nops := 2 + rng.Intn(6)
	script := make([]fuzzOp, 0, nops)
	for i := 0; i < nops; i++ {
		var op fuzzOp
		op.kind = rng.Intn(5)
		switch op.kind {
		case 0:
			op.n = 1 + rng.Intn(1200)
			op.refs = fuzzRefs(rng, 0)
		case 1:
			op.n = 1 + rng.Intn(1200)
			op.refs = fuzzRefs(rng, 0)
			op.ops = int64(rng.Intn(30))
			op.overlap = uint64(rng.Intn(120))
		case 2:
			op.n = 16 + rng.Intn(600)
			op.idx = fuzzIndex(rng, op.n)
			op.rec = 8 * (1 + rng.Intn(12))
		case 3:
			op.n = 1 + rng.Intn(200)
			op.addrs = make([]Addr, op.n)
			op.writes = make([]bool, op.n)
			for j := range op.addrs {
				op.addrs[j] = Addr(rng.Intn(4 << 20))
				op.writes[j] = rng.Intn(4) == 0
			}
		default:
			op.compute = int64(1 + rng.Intn(2000))
		}
		script = append(script, op)
	}
	return script
}

// replayFuzzScript executes the script on one machine. The indexed op
// mirrors svm's run lowering: constant-delta runs of length ≥ 4 become
// one AccessBulk, the rest go element-by-element — the same split the
// real gather/scatter path takes.
func replayFuzzScript(m *Machine, script []fuzzOp) RunStats {
	base := m.AS.Alloc("fuzz", 8<<20).Base
	return m.Run(func(c *CPU) {
		p := c.NewPipe(2, 1, StateMemory)
		for _, op := range script {
			switch op.kind {
			case 0:
				refs := append([]BulkRef(nil), op.refs...)
				for j := range refs {
					refs[j].Base += base
				}
				p.AccessBulk(op.n, refs...)
			case 1:
				refs := append([]BulkRef(nil), op.refs...)
				for j := range refs {
					refs[j].Base += base
				}
				p.AccessLoop(op.n, refs, op.ops, op.overlap, nil)
			case 2:
				rec := Addr(op.rec)
				for k := 0; k < op.n; {
					l, d := 1, 0
					if k+1 < op.n {
						d = op.idx[k+1] - op.idx[k]
						for k+l < op.n && op.idx[k+l]-op.idx[k+l-1] == d {
							l++
						}
					}
					if l >= 4 {
						p.AccessBulk(l,
							BulkRef{Base: base + Addr(op.idx[k])*rec, Size: 8, Stride: d * op.rec},
							BulkRef{Base: base + 5<<20 + Addr(k)*8, Size: 8, Stride: 8, Write: true})
						k += l
						continue
					}
					p.Access(base+Addr(op.idx[k])*rec, 8, false, HintNone)
					p.Access(base+5<<20+Addr(k)*8, 8, true, HintNone)
					k++
				}
			case 3:
				for j := range op.addrs {
					p.Access(base+op.addrs[j], 8, op.writes[j], HintNone)
				}
			default:
				c.Compute(op.compute)
			}
		}
		p.Drain()
		c.DrainWC()
	})
}

// FuzzAccessBulk is the randomized arm of the fast-path oracle: any
// mix of bulk shapes, regular loops, svm-style indexed lowering and
// opaque scalar traffic must leave a fast-path machine bit-identical —
// stats, every cache line and LRU tick, TLB, bus, WC, prefetchers — to
// the reference machine. Counterexamples shrink to a scripted seed.
func FuzzAccessBulk(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1234, 99999} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		script := buildFuzzScript(rand.New(rand.NewSource(seed)))
		run := func(fast bool) (*Machine, RunStats) {
			m := MustNew(PentiumD8300())
			m.SetFastPath(fast)
			return m, replayFuzzScript(m, script)
		}
		fastM, fastStats := run(true)
		refM, refStats := run(false)

		if got, want := fmt.Sprintf("%+v", fastStats), fmt.Sprintf("%+v", refStats); got != want {
			t.Errorf("seed %d: RunStats diverge:\nfast: %s\nref:  %s", seed, got, want)
		}
		fastSnap, refSnap := fastM.StatsSnapshot(), refM.StatsSnapshot()
		for i := range fastSnap.Cov {
			if got, want := fastSnap.Cov[i].Accesses(), refSnap.Cov[i].Accesses(); got != want {
				t.Errorf("seed %d: ctx%d access totals diverge: fast %d, ref %d", seed, i, got, want)
			}
		}
		fastSnap.Cov, refSnap.Cov = [2]CoverageStats{}, [2]CoverageStats{}
		if fastSnap != refSnap {
			t.Errorf("seed %d: MachineStats diverge:\nfast: %+v\nref:  %+v", seed, fastSnap, refSnap)
		}
		if fastDump, refDump := dumpMachine(fastM), dumpMachine(refM); fastDump != refDump {
			t.Errorf("seed %d: machine state diverges:\n%s", seed, firstDiff(fastDump, refDump))
		}
	})
}
