package sim

import (
	"testing"

	"streamgpp/internal/fault"
)

func injector(k fault.Kind, rate float64, max uint64) *fault.Injector {
	cfg := fault.Config{Seed: 7}
	cfg.Rate[k] = rate
	cfg.MaxPerKind[k] = max
	return fault.New(cfg)
}

// A machine without an injector must behave exactly as before: the
// fault plumbing is nil-guarded everywhere, so cycle counts are
// untouched. Guard that by comparing against a machine with a rate-0
// injector, which must also draw nothing.
func TestZeroRateInjectorChangesNothing(t *testing.T) {
	run := func(in *fault.Injector) uint64 {
		m := MustNew(PentiumD8300())
		m.SetFaultInjector(in)
		a := m.AS.Alloc("a", 1<<20)
		return m.Run(memoryTask(a), computeTask(200000)).Cycles
	}
	plain := run(nil)
	zero := fault.New(fault.Config{Seed: 99})
	if got := run(zero); got != plain {
		t.Fatalf("rate-0 injector changed cycles: %d vs %d", got, plain)
	}
	if zero.Draws() != 0 {
		t.Fatalf("rate-0 injector consumed %d draws", zero.Draws())
	}
}

// An injected latency spike must lengthen the run by its configured
// cost and leave a replayable record.
func TestLatencySpikeChargesCycles(t *testing.T) {
	run := func(in *fault.Injector) uint64 {
		m := MustNew(PentiumD8300())
		m.SetFaultInjector(in)
		a := m.AS.Alloc("a", 1<<20)
		return m.Run(func(c *CPU) {
			for addr := a.Base; addr < a.End(); addr += 4096 {
				c.Read(addr, 64, HintNone) // each blocking access may spike
			}
		}, computeTask(200000)).Cycles
	}
	base := run(nil)
	in := injector(fault.LatencySpike, 1, 3)
	spiked := run(in)
	if in.Injected(fault.LatencySpike) != 3 {
		t.Fatalf("injected %d spikes, want 3", in.Injected(fault.LatencySpike))
	}
	if spiked <= base {
		t.Fatalf("spikes did not lengthen the run: %d vs %d", spiked, base)
	}
	// Replay with the same seed: identical fault trace and cycle count.
	in2 := injector(fault.LatencySpike, 1, 3)
	if run(in2) != spiked {
		t.Fatal("replay with same seed gave different cycles")
	}
	if in.TraceString() != in2.TraceString() {
		t.Fatalf("fault traces differ:\n%s\nvs\n%s", in.TraceString(), in2.TraceString())
	}
}

// WaitBudget must return timedOut when nothing ever signals, after
// charging (at least) the budget — and never when the condition turns
// true in time.
func TestWaitBudgetTimesOut(t *testing.T) {
	for _, pol := range []WaitPolicy{PolicyPause, PolicyMwait, PolicyOS} {
		m := MustNew(PentiumD8300())
		e := m.NewEvent()
		var waited uint64
		var timedOut bool
		m.Run(
			func(c *CPU) {
				waited, timedOut = c.WaitBudget(e, pol, 5000, func() bool { return false })
			},
			computeTask(50000), // keeps a sibling alive past the deadline
		)
		if !timedOut {
			t.Fatalf("policy %d: no timeout", pol)
		}
		if waited < 5000 {
			t.Fatalf("policy %d: waited %d < budget 5000", pol, waited)
		}
	}
}

// A dropped wakeup signal must not wedge a sleeping waiter: the engine
// wakes it at its deadline, the condition (made true before the lost
// signal) is visible, and the wait completes successfully.
func TestDroppedWakeupRecoveredByDeadline(t *testing.T) {
	m := MustNew(PentiumD8300())
	m.SetFaultInjector(injector(fault.DroppedWakeup, 1, 1))
	e := m.NewEvent()
	done := false
	var timedOut bool
	m.Run(
		func(c *CPU) {
			_, timedOut = c.WaitBudget(e, PolicyMwait, 20000, func() bool { return done })
		},
		func(c *CPU) {
			c.Compute(1000)
			done = true
			c.Signal(e) // injected: the wakeup is dropped
		},
	)
	if timedOut {
		t.Fatal("wait reported timeout though the condition was true at the deadline")
	}
	if m.WakeupTimeouts() == 0 {
		t.Fatal("engine never used the deadline wake path")
	}
	if m.FaultInjector().Injected(fault.DroppedWakeup) != 1 {
		t.Fatal("wakeup drop was not injected")
	}
}

// Config.Validate must reject non-power-of-two set counts through New
// as an error, not a constructor panic.
func TestValidateRejectsBadSetCount(t *testing.T) {
	cfg := PentiumD8300()
	cfg.L1Ways = 3 // 16 KB / (3 ways × 64 B) is not a power of two
	if _, err := New(cfg); err == nil {
		t.Fatal("non-power-of-two L1 set count accepted")
	}
	cfg = PentiumD8300()
	cfg.L2Ways = 3
	if _, err := New(cfg); err == nil {
		t.Fatal("non-power-of-two L2 set count accepted")
	}
}
