// Package sim models a two-context (SMT) general-purpose processor and
// its memory system at task granularity.
//
// The paper evaluates its stream-program mapping on a hyper-threaded
// 3.4 GHz Pentium 4 (Prescott) with a 1 MB 8-way L2 (128-byte lines),
// an 800 MHz front-side bus (6.4 GB/s) and MONITOR/MWAIT support. Those
// machine properties — not the absolute megahertz — are what shape
// every figure in the evaluation, so this package reproduces them with
// a deterministic discrete-event model:
//
//   - set-associative write-back caches with LRU replacement and
//     non-temporal insertion hints (the mechanism that pins the Stream
//     Register File in cache, §III-A);
//   - a TLB whose page-walk penalty dominates random gathers/scatters
//     (§III-A "more than missing in the cache, missing in the TLB is
//     the dominant factor");
//   - an open-row DRAM + shared front-side bus with bandwidth
//     accounting, so sequential streams run at bus speed while
//     intermixed or random traffic pays row-switch overheads;
//   - a per-context hardware stream prefetcher that only trains on
//     un-intermixed sequential miss streams;
//   - an SMT engine that co-simulates two hardware contexts with
//     calibrated issue-sharing interference (Fig. 6) and busy-wait
//     interference for PAUSE vs. MONITOR/MWAIT (Fig. 8).
//
// Simulated threads are ordinary goroutines driving a *CPU handle; the
// engine serialises them in virtual time, so models are deterministic
// and race-free without locks in user code.
package sim

// Hint describes cacheability hints attached to a memory access,
// mirroring the Pentium 4's non-temporal prefetch (prefetchnta) and
// non-temporal store (movntq) instructions used by the paper's
// streamGather/streamScatter implementations.
type Hint uint8

const (
	// HintNone is an ordinary temporal access.
	HintNone Hint = iota
	// HintNonTemporal marks data that should not displace the pinned
	// SRF working set: loads fill a restricted cache way with lowest
	// replacement priority, stores bypass the caches through
	// write-combining buffers (no read-for-ownership).
	HintNonTemporal
)

// Config holds every machine parameter. The zero value is not valid;
// start from PentiumD8300 (the paper's DELL Dimension 8300 testbed) and
// override fields for ablations.
type Config struct {
	// FreqHz is the core clock, used only to convert cycles to
	// seconds/bandwidth for reporting.
	FreqHz float64

	// L1 data cache geometry (shared by both SMT contexts, as on the
	// Pentium 4).
	L1Bytes   int
	L1Ways    int
	L1Line    int
	L1HitLat  uint64
	L2Bytes   int
	L2Ways    int
	L2Line    int
	L2HitLat  uint64
	L2NTWays  int // ways per set available to non-temporal fills
	PageBytes int

	// TLB.
	TLBEntries int
	TLBWalkLat uint64 // hardware page-table walk penalty, cycles

	// DRAM and front-side bus.
	DRAMLat          uint64  // first-word latency of a demand line fill, cycles
	BusBytesPerCycle float64 // peak FSB transfer rate in bytes per core cycle
	BusEff           float64 // sustained fraction of peak for row-hit transfers
	RowMissOverhead  uint64  // extra bus occupancy when the DRAM row changes, cycles
	RowBytes         int     // DRAM row (page) size for open-row hits
	NTSeqLoadFactor  float64 // sequential bandwidth multiplier for software NT prefetch streams (<1: paper found NT hurt already-prefetched sequential loads)
	WCPartialPenalty uint64  // extra bus occupancy flushing a partially-filled write-combining buffer

	// Hardware prefetcher (per context).
	PFStreams int // stream detector entries; intermixing more streams than this defeats it
	PFDepth   int // lines fetched ahead once a stream is trained
	PFTrain   int // consecutive line misses needed to train a stream

	// Core issue model.
	CPI     float64 // cycles per abstract compute op when running alone
	Quantum uint64  // engine contention-sampling quantum, cycles

	// SMT interference factors (see DESIGN.md §5; each has an ablation
	// bench). They scale a context's compute rate depending on what the
	// sibling context is doing.
	SMTComputeFactor    float64 // sibling also computing (Fig. 6a)
	SMTComputeMemFactor float64 // sibling doing bulk memory (Fig. 6c)
	MemMemPenalty       float64 // bus-occupancy inflation when both contexts stream memory (Fig. 6b)
	PausePenalty        float64 // sibling spinning with PAUSE (Fig. 8a)

	// Inter-thread dispatch latencies measured in §III-B.2.
	PauseDispatchLat  uint64 // PAUSE spin loop notices a write after ~175 cycles
	MwaitDispatchLat  uint64 // MONITOR/MWAIT wakeup, ~680 cycles
	OSDispatchLat     uint64 // OS deschedule/wakeup, tens of thousands of cycles
	PauseLoopCycles   uint64 // cost of one PAUSE spin iteration
	MonitorSetupLat   uint64 // arming MONITOR before MWAIT
	MemMemWindow      uint64 // how recently the sibling must have used the bus to count as "streaming" for MemMemPenalty
	SpinCheckInterval uint64 // how often a sleeping/spinning context re-samples in the engine
}

// PentiumD8300 returns the configuration calibrated against the paper's
// testbed: a DELL Dimension 8300, 3.4 GHz Pentium 4 Prescott, 1 MB
// 8-way L2 with 128-byte lines, 800 MHz FSB (6.4 GB/s), i925X chipset.
//
// Mechanistic parameters come straight from the hardware manuals and
// the paper (L2 access 25 cycles, PAUSE dispatch 175 cycles, MWAIT
// dispatch 680 cycles). The handful of behavioural factors are
// calibrated so the micro-measurements in §III reproduce: sequential
// gather bandwidth near bus speed at 4-byte records falling to
// ~141 MB/s at 128-byte records, random gathers ~63 MB/s, NT helping
// random by ~30% and hurting sequential loads, comp∥comp and comp∥mem
// overlap saving 20–30% while mem∥mem loses ~6%.
func PentiumD8300() Config {
	return Config{
		FreqHz: 3.4e9,

		L1Bytes:   16 << 10,
		L1Ways:    8,
		L1Line:    64,
		L1HitLat:  4,
		L2Bytes:   1 << 20,
		L2Ways:    8,
		L2Line:    128,
		L2HitLat:  25,
		L2NTWays:  2, // "leaves one or two cache lines in each set available for non-SRF data"
		PageBytes: 4 << 10,

		TLBEntries: 64,
		TLBWalkLat: 110,

		DRAMLat:          300,
		BusBytesPerCycle: 6.4e9 / 3.4e9, // ≈1.88 B/cycle peak
		BusEff:           0.78,
		RowMissOverhead:  40,
		RowBytes:         4 << 10,
		NTSeqLoadFactor:  0.72,
		WCPartialPenalty: 24,

		PFStreams: 2,
		PFDepth:   8,
		PFTrain:   2,

		CPI:     1.0,
		Quantum: 200,

		SMTComputeFactor:    0.625,
		SMTComputeMemFactor: 0.72,
		MemMemPenalty:       1.06,
		PausePenalty:        0.74,

		PauseDispatchLat:  175,
		MwaitDispatchLat:  680,
		OSDispatchLat:     30000,
		PauseLoopCycles:   40,
		MonitorSetupLat:   60,
		MemMemWindow:      2000,
		SpinCheckInterval: 200,
	}
}

// ImprovedStream returns a hypothetical evolution of the Pentium 4
// along the axes §V-A identifies as limiting stream programs on 2005
// hardware: "the asynchronous bulk memory transfers are affected by TLB
// mapping, limiting the bandwidth utilization ... changes to the
// micro-architecture like adding more functional units and increasing
// TLB mapping could substantially improve the performance of stream
// programs." Relative to PentiumD8300: an 8× larger TLB with a faster
// walk, twice the non-temporal cache ways (so bulk streams keep more
// reuse without touching the SRF), and a deeper prefetcher. The
// FutureMachine benchmarks measure how much the stream programs gain.
func ImprovedStream() Config {
	c := PentiumD8300()
	c.TLBEntries = 512
	c.TLBWalkLat = 25
	c.L2NTWays = 4
	c.PFDepth = 16
	return c
}

// Validate reports a non-nil error when the configuration is internally
// inconsistent (non-power-of-two geometry, zero rates, and so on). It
// covers every geometry precondition of the cache/TLB/address-space
// constructors, so New surfaces bad configurations as errors; the
// panics remaining inside those constructors are internal invariants,
// reachable only by bypassing New.
func (c Config) Validate() error {
	switch {
	case c.FreqHz <= 0:
		return cfgErr("FreqHz must be positive")
	case c.L1Bytes <= 0 || c.L1Ways <= 0 || c.L1Line <= 0:
		return cfgErr("L1 geometry must be positive")
	case c.L1Bytes%(c.L1Ways*c.L1Line) != 0:
		return cfgErr("L1Bytes must be a multiple of L1Ways*L1Line")
	case !isPow2(c.L1Bytes / (c.L1Ways * c.L1Line)):
		return cfgErr("L1 set count must be a power of two")
	case c.L2Bytes <= 0 || c.L2Ways <= 0 || c.L2Line <= 0:
		return cfgErr("L2 geometry must be positive")
	case c.L2Bytes%(c.L2Ways*c.L2Line) != 0:
		return cfgErr("L2Bytes must be a multiple of L2Ways*L2Line")
	case !isPow2(c.L2Bytes / (c.L2Ways * c.L2Line)):
		return cfgErr("L2 set count must be a power of two")
	case c.L2NTWays < 0 || c.L2NTWays > c.L2Ways:
		return cfgErr("L2NTWays must be in [0, L2Ways]")
	case !isPow2(c.L1Line) || !isPow2(c.L2Line) || !isPow2(c.PageBytes):
		return cfgErr("line and page sizes must be powers of two")
	case c.TLBEntries <= 0:
		return cfgErr("TLBEntries must be positive")
	case c.BusBytesPerCycle <= 0 || c.BusEff <= 0 || c.BusEff > 1:
		return cfgErr("bus rate must be positive and BusEff in (0,1]")
	case c.RowBytes <= 0 || !isPow2(c.RowBytes):
		return cfgErr("RowBytes must be a positive power of two")
	case c.CPI <= 0:
		return cfgErr("CPI must be positive")
	case c.Quantum == 0:
		return cfgErr("Quantum must be positive")
	case c.SMTComputeFactor <= 0 || c.SMTComputeFactor > 1,
		c.SMTComputeMemFactor <= 0 || c.SMTComputeMemFactor > 1,
		c.PausePenalty <= 0 || c.PausePenalty > 1:
		return cfgErr("SMT factors must be in (0,1]")
	case c.MemMemPenalty < 1:
		return cfgErr("MemMemPenalty must be >= 1")
	case c.NTSeqLoadFactor <= 0 || c.NTSeqLoadFactor > 1:
		return cfgErr("NTSeqLoadFactor must be in (0,1]")
	case c.PFStreams < 0 || c.PFDepth < 0 || c.PFTrain < 1:
		return cfgErr("prefetcher parameters out of range")
	case c.PauseLoopCycles == 0 || c.SpinCheckInterval == 0:
		return cfgErr("spin intervals must be positive")
	}
	return nil
}

type cfgErr string

func (e cfgErr) Error() string { return "sim: invalid config: " + string(e) }

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// CyclesToSeconds converts a cycle count to wall-clock seconds on the
// configured machine.
func (c Config) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / c.FreqHz
}

// BandwidthGBs converts bytes moved in a cycle span to GB/s.
func (c Config) BandwidthGBs(bytes uint64, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(bytes) / c.CyclesToSeconds(cycles) / 1e9
}
