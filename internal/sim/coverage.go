package sim

// This file is the data model of the fast-path coverage profiler: a
// typed taxonomy of the reasons the bulk fast path (bulk.go) declines
// to serve an access or a batch, per-context counters of how traffic
// split between the pinned fast path and the per-access reference
// path, and per-context per-level bandwidth attribution (bytes moved
// and cycles occupied at the level that served them). All counters are
// plain uint64 fields bumped inline on paths that already mutate
// state, so the instrumentation allocates nothing and never touches a
// simulated clock — coverage answers "why is the simulator slow"
// without changing what it simulates.
//
// Counters are kept per hardware context, never per machine: the
// engine interleaves the two contexts' tasks in virtual time, so a
// machine-global snapshot bracketing one task would absorb the
// sibling's traffic. Each context writes only its own slot, which also
// keeps the counters race-free under the engine's one-runs-at-a-time
// scheduling.

// BailReason classifies why the bulk fast path disengaged for an
// access or a batch of iterations. The taxonomy is documented in
// DESIGN.md §13; the zero value is BailDisabled.
type BailReason uint8

// Bail reasons, in declaration order (metric keys use String()).
const (
	// BailDisabled: the fast path is switched off for the machine
	// (SetFastPath(false), streambench -nofast, STREAMGPP_FASTPATH=off).
	// Counted once per AccessBulk call.
	BailDisabled BailReason = iota
	// BailIndexed: indexed (data-dependent) traffic never enters
	// AccessBulk — the svm layer issues it one Access per element and
	// reports it here, one event per element.
	BailIndexed
	// BailRefShape: the reference pattern itself is unbatchable — no
	// refs, more than maxBatchRefs, or a non-positive size or stride.
	BailRefShape
	// BailWindowFull: the pipe's MLP window is full, so the reference
	// path must run to drain outstanding misses.
	BailWindowFull
	// BailSiblingClock: the sibling context's clock bounds the batch
	// below two iterations — a park would actually switch contexts.
	BailSiblingClock
	// BailShortBatch: a pin window (line end, WC-buffer fill) bounds
	// the batch below two iterations.
	BailShortBatch
	// BailNoPin: no pin proves the access resident (line or page
	// crossing, pin evicted by round-robin replacement).
	BailNoPin
	// BailTLBGenMiss: a pin's TLB entry was invalidated (generation
	// changed) and the re-probe missed — pin-generation invalidation.
	BailTLBGenMiss
	// BailL1GenMiss: the pinned L1 line was evicted or its set mutated
	// since the pin (associativity-memo miss on re-probe).
	BailL1GenMiss
	// BailWCState: the write-combining buffer is closed, open on a
	// different line, would fill, or two NT-store streams collide.
	BailWCState
	// BailPinCold: the cold-streak heuristic (pinColdLimit) skipped
	// the pin probe entirely — the signature of random traffic.
	BailPinCold
	// BailIndexedRun: indexed traffic that the svm layer *did* coalesce
	// — a constant-delta run in the index vector lowered to AccessBulk
	// strided refs. One event per element, splitting BailIndexed so the
	// profiler attributes what fraction of indexed traffic batches.
	BailIndexedRun
	// BailBackoff: the per-ref-shape backoff suppressed the bulkBatch
	// probe after repeated identical bails. One event per skipped
	// iteration — the probe tax those iterations did not pay.
	BailBackoff

	// NumBailReasons sizes Bails arrays.
	NumBailReasons
)

var bailNames = [NumBailReasons]string{
	"disabled", "indexed", "ref_shape", "window_full", "sibling_clock",
	"short_batch", "no_pin", "tlb_gen_miss", "l1_gen_miss", "wc_state",
	"pin_cold", "indexed_run", "backoff",
}

// String returns the metric-key name of the reason.
func (r BailReason) String() string {
	if r < NumBailReasons {
		return bailNames[r]
	}
	return "unknown"
}

// BailReasons lists every reason in declaration order, so reports and
// metric key sets stay deterministic.
func BailReasons() []BailReason {
	out := make([]BailReason, NumBailReasons)
	for i := range out {
		out[i] = BailReason(i)
	}
	return out
}

// CoverageStats counts, for one hardware context, how Pipe traffic
// split between the pinned fast path and the per-access reference
// path, and why the fast path disengaged when it did. FastAccesses +
// SlowAccesses is mode-invariant (every access runs exactly once
// either way); the split and the bail counts are diagnostics of the
// simulator's own speed and legitimately differ fast-on vs fast-off.
type CoverageStats struct {
	// FastAccesses counts accesses served by a pin — collapsed in
	// closed form by bulkBatch or replayed singly by fastAccess.
	FastAccesses uint64
	// SlowAccesses counts accesses that walked the per-access
	// reference path (MemSystem.Access).
	SlowAccesses uint64
	// BatchedIters counts loop iterations bulkBatch collapsed.
	BatchedIters uint64
	// Bails counts fast-path disengagement events by reason. An event
	// is one failed attempt — a declined batch or an unproductive pin
	// scan — except BailIndexed and BailPinCold, which are per access.
	Bails [NumBailReasons]uint64
}

// Reset zeroes the counters.
func (s *CoverageStats) Reset() { *s = CoverageStats{} }

// Delta returns s - prev, for bracketing one task or run.
func (s CoverageStats) Delta(prev CoverageStats) CoverageStats {
	d := CoverageStats{
		FastAccesses: s.FastAccesses - prev.FastAccesses,
		SlowAccesses: s.SlowAccesses - prev.SlowAccesses,
		BatchedIters: s.BatchedIters - prev.BatchedIters,
	}
	for i := range s.Bails {
		d.Bails[i] = s.Bails[i] - prev.Bails[i]
	}
	return d
}

// Add accumulates o into s.
func (s *CoverageStats) Add(o CoverageStats) {
	s.FastAccesses += o.FastAccesses
	s.SlowAccesses += o.SlowAccesses
	s.BatchedIters += o.BatchedIters
	for i := range s.Bails {
		s.Bails[i] += o.Bails[i]
	}
}

// Accesses returns the total Pipe accesses, mode-invariant.
func (s CoverageStats) Accesses() uint64 { return s.FastAccesses + s.SlowAccesses }

// FastPct returns the fast-path coverage percentage (0 when no
// accesses were recorded).
func (s CoverageStats) FastPct() float64 {
	total := s.Accesses()
	if total == 0 {
		return 0
	}
	return 100 * float64(s.FastAccesses) / float64(total)
}

// DominantBail returns the most-counted bail reason and its count;
// ties go to the earlier reason in declaration order.
func (s CoverageStats) DominantBail() (BailReason, uint64) {
	best, n := BailDisabled, uint64(0)
	for i := range s.Bails {
		if s.Bails[i] > n {
			best, n = BailReason(i), s.Bails[i]
		}
	}
	return best, n
}

// BWStats attributes one context's memory traffic per level: bytes
// moved and cycles the level was occupied serving them. The accounting
// model (what "occupied" means at each level) is fixed in DESIGN.md
// §13; by construction the counters are identical fast-path on and
// off — the fast path only serves guaranteed L1 hits and WC posts and
// applies the same increments the reference path would, while L2, PF,
// DRAM and TLB-walk rows only ever increment on the reference path.
// The Bytes/Cycles arrays are indexed by Level; the LevelMem row is
// bus occupancy and covers all DRAM traffic attributable to the
// context (demand fills, dirty writebacks, WC flushes, prefetches).
type BWStats struct {
	Bytes  [5]uint64 // indexed by Level
	Cycles [5]uint64 // indexed by Level
	// TLBWalks and TLBWalkCycles attribute page-walk serialization
	// (the TLB has no byte traffic of its own).
	TLBWalks      uint64
	TLBWalkCycles uint64
}

// Reset zeroes the counters.
func (s *BWStats) Reset() { *s = BWStats{} }

// Delta returns s - prev, for bracketing one task or run.
func (s BWStats) Delta(prev BWStats) BWStats {
	d := BWStats{
		TLBWalks:      s.TLBWalks - prev.TLBWalks,
		TLBWalkCycles: s.TLBWalkCycles - prev.TLBWalkCycles,
	}
	for i := range s.Bytes {
		d.Bytes[i] = s.Bytes[i] - prev.Bytes[i]
		d.Cycles[i] = s.Cycles[i] - prev.Cycles[i]
	}
	return d
}

// Add accumulates o into s.
func (s *BWStats) Add(o BWStats) {
	s.TLBWalks += o.TLBWalks
	s.TLBWalkCycles += o.TLBWalkCycles
	for i := range s.Bytes {
		s.Bytes[i] += o.Bytes[i]
		s.Cycles[i] += o.Cycles[i]
	}
}

// bwLevelKeys names levels in flat metric keys: Level.String() yields
// display names ("MEM"), metric keys want stable lowercase ("dram").
var bwLevelKeys = [5]string{"l1", "l2", "pf", "dram", "wc"}

// LevelKey returns the flat-metric key fragment for a level (e.g.
// LevelMem → "dram").
func LevelKey(l Level) string {
	if int(l) < len(bwLevelKeys) {
		return bwLevelKeys[l]
	}
	return "unknown"
}

// CountBail records n fast-path disengagement events of the given
// reason against this context. The svm layer uses it to report
// indexed (data-dependent) traffic, which is issued one Access per
// element and never reaches AccessBulk.
func (c *CPU) CountBail(r BailReason, n uint64) {
	c.m.Cov[c.p.id].Bails[r] += n
}

// Coverage returns the accumulated coverage counters of one context.
func (m *Machine) Coverage(ctx int) CoverageStats { return m.Cov[ctx] }

// Bandwidth returns the accumulated per-level bandwidth attribution of
// one context.
func (m *Machine) Bandwidth(ctx int) BWStats { return m.Mem.BW[ctx] }
