package sim

// This file implements the cycle-exact bulk fast path. Stream
// workloads (sequential or constant-stride gathers/scatters, and the
// regular baseline's interleaved loops) touch the same cache line, TLB
// page or write-combining buffer many times in a row, so almost every
// access repeats the hierarchy walk the previous access just did. Each
// hardware context keeps a set of "pins": windows of memory proven
// resident (an L1 line plus its TLB entry, or a WC-buffer page). An
// access that lands inside a pin replays *exactly* the state mutations
// the per-access reference path would perform — same tick increments,
// same LRU updates, same statistics, same clock arithmetic, same park
// cadence — skipping only the redundant searches. Anything a pin
// cannot prove resident (line/page crossings, evictions by the sibling
// context, WC flushes) takes the ordinary path, whose result re-arms a
// pin. Generation counters on the caches and TLB detect foreign
// mutations that could silently unpin a window.
//
// Three adaptive layers keep the fast path profitable (DESIGN.md §14):
// pins are captured eagerly after every slow access (an L1 hit, a WC
// post, or a fill — the filled lines are resident too), so one
// reference iteration re-arms the batch path; the pin set is a
// per-context hashed 2-way set-associative table that survives Pipe
// lifetimes (svm creates a fresh Pipe per strip); and a per-ref-shape
// backoff counter suppresses bulkBatch probing after repeated
// identical bails, so miss-bound workloads stop paying the probe tax.
// All three decide only *which* path executes an access, never what the
// access does, so they cannot affect simulated timing.
//
// Because the fast step performs literally the same mutations as the
// reference path, the two are bit-identical by construction; the
// differential tests in bulk_test.go, internal/svm and internal/bench
// enforce this.

// defaultFastPath controls whether newly created Machines use the bulk
// fast path. It mirrors defaultObserver: differential tests need to
// reach machines created deep inside app packages.
var defaultFastPath = true

// SetDefaultFastPath enables or disables the bulk fast path on every
// Machine created after this call. Set it from one goroutine before
// any machine is built.
func SetDefaultFastPath(on bool) { defaultFastPath = on }

// DefaultFastPath reports the current default (ledger entries record
// which mode produced a measurement).
func DefaultFastPath() bool { return defaultFastPath }

// SetFastPath enables or disables the bulk fast path on this machine.
func (m *Machine) SetFastPath(on bool) { m.fastPath = on }

// FastPath reports whether the bulk fast path is enabled.
func (m *Machine) FastPath() bool { return m.fastPath }

// pin is one proven-resident window.
type pin struct {
	valid bool
	wc    bool // pins a WC-buffer page rather than an L1 line
	fill  bool // captured speculatively from a miss fill, not proven reuse
	hit   bool // served at least one fast access since capture

	lo, hi Addr       // the window: one L1 line (cacheable) or one page (wc)
	ln     *cacheLine // L1-resident line, cacheable pins only
	te     *tlbEntry  // TLB entry mapping the window
	set    int        // L1 set of ln

	l1Gen    uint64
	l1SetGen uint64
	tlbGen   uint64
}

// Pin-set geometry: a hashed 2-way set-associative table per hardware
// context. Sets are chosen by a multiplicative hash of the line
// address (arrays are page-aligned, so co-advancing streams would
// thrash a simple modulo index at every line), and the two ways give a
// colliding pair of streams a home each; the victim is the
// least-recently-used way. 128 line pins comfortably cover the widest
// loop's concurrent streams plus the regular baseline's interleaved
// arrays.
const (
	pinSetBits = 6
	pinSets    = 1 << pinSetBits
	pinWays    = 2
)

// pinColdLimit is the per-set miss streak after which Pipe.Access
// stops probing that pin set and eager capture stops pinning filled
// lines into it: on random (indexed) traffic pins essentially never
// match, so the per-access probe and the speculative capture are pure
// overhead. The streak is kept per set, not per context, because real
// workloads interleave patterned and patternless traffic on the same
// pipe (a gather's sequential index stream between its random data
// accesses): a context-global streak is perpetually reset by the
// stream hits and never shuts off the hopeless probes. Per set, the
// handful of sets holding live stream pins stay warm while the rest —
// probed only by traffic that never re-touches a line — go cold
// independently. The counter moves up and down rather than resetting
// on a hit (see chill and warm): a miss costs twice what a hit pays
// back, so mixed traffic must hit well over ⅔ of its probes to stay
// warm. An L1-hit capture into a cold set grants exactly one probed
// access (probation) — a stream that settles back into line reuse hits
// that probe and warms up over its next few hits, while random traffic
// wastes at most one probe per capture. Like all pin policy this
// changes only which path runs, never any simulated state.
const pinColdLimit = 32

// pinWasteLimit gates speculative fill captures by their observed
// utility: install tracks how many consecutive fill-captured pins were
// evicted without ever serving a fast access. Partially-random traffic
// (a gather whose index and SRF streams hit pins while the data array
// is random) keeps the cold streak low, so pinColdLimit never engages —
// but its fill pins are pure waste *and* they evict the useful stream
// pins they collide with. Once the waste streak saturates, fills stop
// pinning; evicting a pin that did serve a hit resets the streak, so a
// workload that returns to line reuse re-opens fill capture.
const pinWasteLimit = 16

// Backoff tuning: after backoffStreak consecutive identical bails on
// one ref shape, AccessBulk skips bulkBatch probing for backoffBase
// iterations, doubling (up to << backoffMaxLevel) each time the probe
// fails again with the same reason right after a skip window — failed
// probes are pure overhead on top of the reference iteration, so a
// shape that never batches (miss-bound, oversized records) must stop
// paying per iteration. Any pin capture ends the suppression
// immediately (pin-dependent bails can now succeed); BailRefShape is
// permanent for the shape and keeps its backoff across captures.
const (
	backoffSlotBits = 4
	backoffSlots    = 1 << backoffSlotBits
	backoffStreak   = 4
	backoffBase     = 16
	backoffMaxLevel = 6
)

// backoffEntry is one ref shape's saturating bail counter.
type backoffEntry struct {
	key    uint64 // shape hash (collisions reclaim the slot)
	reason BailReason
	streak uint8  // consecutive identical bails
	level  uint8  // escalation: skip = backoffBase << level
	skip   uint16 // iterations left to skip probing
	gen    uint32 // pinSet.captureGen at the last observation
}

// note records one failed probe's reason and engages (or escalates)
// the skip window after backoffStreak identical bails in a row.
func (e *backoffEntry) note(bail BailReason, gen uint32) {
	if bail != e.reason {
		e.reason, e.streak, e.level, e.skip, e.gen = bail, 1, 0, 0, gen
		return
	}
	e.gen = gen
	if e.streak < backoffStreak {
		e.streak++
		if e.streak < backoffStreak {
			return
		}
	}
	e.skip = backoffBase << e.level
	if e.level < backoffMaxLevel {
		e.level++
	}
}

// pinSet is one hardware context's persistent fast-path state. It
// lives on the Machine (indexed by context id) rather than the Pipe,
// because svm creates a fresh Pipe per strip: pins warmed by one strip
// must serve the next. All of it is policy/bookkeeping — the simulated
// state lives in the caches, TLB and clocks.
type pinSet struct {
	sets [pinSets][pinWays]pin
	mru  [pinSets]uint8 // most-recently-used way per set
	wc   pin            // the single WC-buffer page pin (one buffer per context)

	cold      [pinSets]uint8 // per-set up/down probe counters, see chill/warm
	probeLine [pinSets]Addr  // per-set probation target, see thaw
	waste     int            // consecutive fill pins evicted unused, see pinWasteLimit

	// captureGen counts pin captures; backoff entries for pin-dependent
	// bail reasons expire when it moves, making recovery immediate.
	captureGen uint32
	backoff    [backoffSlots]backoffEntry
}

// pinSlot hashes a line address into a set index. The multiplicative
// hash decorrelates co-advancing streams whose bases share alignment.
func pinSlot(line Addr) int {
	return int((uint64(line) * 0x9E3779B97F4A7C15) >> (64 - pinSetBits))
}

// lookup returns the pin covering the given line, or nil.
func (ps *pinSet) lookup(line Addr) *pin {
	s := pinSlot(line)
	ws := &ps.sets[s]
	if ws[0].valid && ws[0].lo == line {
		ps.mru[s] = 0
		return &ws[0]
	}
	if ws[1].valid && ws[1].lo == line {
		ps.mru[s] = 1
		return &ws[1]
	}
	return nil
}

// install stores pn in its set, refreshing an existing pin for the
// same line or evicting the LRU way. Evictions feed the fill-capture
// utility streak: displacing a fill pin that never served a hit is
// evidence the traffic is too random to be worth pinning on fills.
func (ps *pinSet) install(pn pin) {
	s := pinSlot(pn.lo)
	ws := &ps.sets[s]
	var w int
	switch {
	case ws[0].valid && ws[0].lo == pn.lo:
		w = 0
	case ws[1].valid && ws[1].lo == pn.lo:
		w = 1
	case !ws[0].valid:
		w = 0
	case !ws[1].valid:
		w = 1
	default:
		w = 1 - int(ps.mru[s])
	}
	if old := &ws[w]; old.valid && old.lo != pn.lo {
		if old.hit {
			ps.waste = 0
		} else if old.fill && ps.waste < pinWasteLimit {
			ps.waste++
		}
	}
	ws[w] = pn
	ps.mru[s] = uint8(w)
}

// chill notes a probed access in line's set that no pin served; the
// counter saturates at pinColdLimit, where probing stops.
func (ps *pinSet) chill(line Addr) {
	s := pinSlot(line)
	if c := ps.cold[s] + 2; c < pinColdLimit {
		ps.cold[s] = c
	} else {
		ps.cold[s] = pinColdLimit
	}
}

// warm notes a pin hit in line's set. A hit pays back half a miss, not
// the whole streak: a served probe is only break-even against the
// reference walk (the walk's own memoization makes L1 hits cheap), so
// traffic must hit well over ⅔ of its probes before probing is a net
// win. Under this ratio mixed traffic — a mesh gather whose sporadic
// locality serves 40% of probes — drifts cold and stops paying the 60%
// probe tax, while streams and dense reuse (hit rates near 1) pay down
// their occasional new-line misses and stay warm.
func (ps *pinSet) warm(line Addr) {
	if s := pinSlot(line); ps.cold[s] > 0 {
		ps.cold[s]--
	}
}

// thaw applies the capture-time cold policy to line's set: a capture
// with proven reuse (L1 hit, WC post) pays the counter down one step —
// the same credit a pin hit earns, so capture evidence cannot outvote
// probe evidence (an L1-heavy workload whose probes still miss, e.g. a
// multi-array interleave whose lines re-hit L1 but rarely re-hit their
// pins, must still drift cold) — or grants one probation probe when
// the set was fully cold. Probation is line-targeted (probeLine): in a
// cold set the only pin worth probing for is the one this capture just
// installed, so the probe fires only when the next same-set access
// touches that very line — a sequential stream re-touching its line
// qualifies and re-warms, while an unrelated array colliding into the
// set is spared a guaranteed-miss probe.
func (ps *pinSet) thaw(line Addr) {
	s := pinSlot(line)
	if ps.cold[s] >= pinColdLimit {
		ps.cold[s] = pinColdLimit - 1
		ps.probeLine[s] = line
	} else if ps.cold[s] > 0 {
		ps.cold[s]--
	}
}

// backoffFor resolves the backoff entry for one ref shape (sizes,
// strides, write/hint flags — not bases: the same loop shape recurs
// across strips at shifting bases).
func (ps *pinSet) backoffFor(refs []BulkRef) *backoffEntry {
	const prime = 0x100000001b3
	h := (uint64(len(refs)) + 1) * prime
	for i := range refs {
		r := &refs[i]
		h ^= uint64(uint32(r.Size))
		h *= prime
		h ^= uint64(uint32(r.Stride))
		h *= prime
		v := uint64(r.Hint) << 1
		if r.Write {
			v |= 1
		}
		h ^= v
		h *= prime
	}
	e := &ps.backoff[h>>(64-backoffSlotBits)]
	if e.key != h {
		*e = backoffEntry{key: h}
	}
	return e
}

// BulkRef describes one reference pattern of a bulk operation:
// iteration k of the operation touches [Base+k*Stride, Base+k*Stride+Size).
type BulkRef struct {
	Base   Addr
	Size   int
	Stride int
	Write  bool
	Hint   Hint
}

// AccessBulk issues n iterations over the given reference patterns,
// bit-identically to the equivalent loop nest
//
//	for k := 0; k < n; k++ {
//		for _, r := range refs {
//			p.Access(r.Base+Addr(k*r.Stride), r.Size, r.Write, r.Hint)
//		}
//	}
//
// Declaring the whole pattern in one call is what lets the fast path
// coalesce: whenever every reference of an iteration is pinned
// (guaranteed L1 hit or write-combining post) and the engine would not
// switch contexts, a whole run of iterations collapses into one
// closed-form state update (see bulkBatch) — the simulator walks cache
// lines, not records. With the fast path disabled this is the literal
// reference loop. A Stride of 0 is a valid pattern (every iteration
// re-touches the same window — an indexed run with constant index, or
// a scatter-add's read-modify-write pair).
func (p *Pipe) AccessBulk(n int, refs ...BulkRef) {
	p.declared = true
	c := p.c
	cov := &c.m.Cov[c.p.id]
	if !c.m.fastPath {
		cov.Bails[BailDisabled]++
		for k := 0; k < n; k++ {
			for i := range refs {
				r := &refs[i]
				p.Access(r.Base+Addr(k*r.Stride), r.Size, r.Write, r.Hint)
			}
		}
		return
	}
	if n == 1 {
		// A single iteration can never batch; skip the probe and the
		// backoff bookkeeping entirely (indexed gathers degenerate to
		// per-element calls on random indices — this is their hot path).
		cov.Bails[BailShortBatch]++
		for i := range refs {
			r := &refs[i]
			p.Access(r.Base, r.Size, r.Write, r.Hint)
		}
		return
	}
	ps := p.ps
	bo := ps.backoffFor(refs)
	for k := 0; k < n; {
		// A live skip window suppresses the probe; it dies instantly on
		// any pin capture (except for shape bails, which no capture can
		// cure) so a re-armed stream resumes batching without waiting
		// out the window.
		if bo.skip > 0 && (bo.reason == BailRefShape || bo.gen == ps.captureGen) {
			bo.skip--
			cov.Bails[BailBackoff]++
		} else {
			bo.skip = 0
			adv, bail := p.bulkBatch(k, n-k, refs)
			if adv > 0 {
				k += adv
				bo.streak, bo.level = 0, 0
				continue
			}
			cov.Bails[bail]++
			bo.note(bail, ps.captureGen)
		}
		for i := range refs {
			r := &refs[i]
			p.Access(r.Base+Addr(k*r.Stride), r.Size, r.Write, r.Hint)
		}
		k++
	}
}

// AccessLoop issues n iterations of a regular (conventional-code)
// affine loop, bit-identically to the equivalent per-iteration loop
//
//	for i := 0; i < n; i++ {
//		readsDone := 0
//		for _, r := range refs {
//			res := p.Access(r.Base+Addr(i*r.Stride), r.Size, r.Write, r.Hint)
//			if !r.Write && res.Done > readsDone { readsDone = res.Done }
//		}
//		body(i)
//		if ops > 0 {
//			if readsDone > overlap { c.StallUntil(readsDone - overlap) }
//			c.Compute(ops)
//		}
//	}
//
// — exec.RunRegular's iteration scheme. Declaring the refs, the
// (constant) per-iteration compute cost and the overlap window in one
// call lets the fast path collapse whole runs of all-hit iterations
// into a closed-form update (loopBatch): because every access is a
// pinned L1 hit, the stall and compute deltas are identical from one
// iteration to the next, so k iterations of refs+stall+compute apply
// as one multiplication. body must be purely functional (host-side
// arithmetic, no simulated accesses); it is still called once per
// iteration in order.
func (p *Pipe) AccessLoop(n int, refs []BulkRef, ops int64, overlap uint64, body func(int)) {
	p.declared = true
	c := p.c
	cov := &c.m.Cov[c.p.id]
	if !c.m.fastPath {
		cov.Bails[BailDisabled]++
		for i := 0; i < n; i++ {
			p.loopIter(i, refs, ops, overlap, body)
		}
		return
	}
	ps := p.ps
	bo := ps.backoffFor(refs)
	for i := 0; i < n; {
		if bo.skip > 0 && (bo.reason == BailRefShape || bo.gen == ps.captureGen) {
			bo.skip--
			cov.Bails[BailBackoff]++
		} else {
			bo.skip = 0
			adv, bail := p.loopBatch(i, n-i, refs, ops, overlap, body)
			if adv > 0 {
				i += adv
				bo.streak, bo.level = 0, 0
				continue
			}
			cov.Bails[bail]++
			bo.note(bail, ps.captureGen)
		}
		p.loopIter(i, refs, ops, overlap, body)
		i++
	}
}

// loopIter is AccessLoop's reference path: one iteration exactly as
// exec.RunRegular performs it.
func (p *Pipe) loopIter(i int, refs []BulkRef, ops int64, overlap uint64, body func(int)) {
	var readsDone uint64
	for r := range refs {
		ref := &refs[r]
		res := p.Access(ref.Base+Addr(i*ref.Stride), ref.Size, ref.Write, ref.Hint)
		if !ref.Write && res.Done > readsDone {
			readsDone = res.Done
		}
	}
	if body != nil {
		body(i)
	}
	if ops > 0 {
		c := p.c
		if readsDone > overlap {
			c.StallUntil(readsDone - overlap)
		}
		c.Compute(ops)
	}
}

// loopBatch tries to execute iterations i0, i0+1, ... of an affine
// regular loop as one aggregate update, returning how many it consumed
// (0 = run one reference iteration and retry) and the typed reason
// when it consumed none.
//
// On top of bulkBatch's conditions (every ref pinned for the run, all
// single-line cacheable hits) it requires a single live context: the
// stall and compute phases sample the sibling's state through
// computeRate and park, so only the regular baseline's solo context
// can replay them in closed form. Under those conditions each
// iteration advances the clock by the same three constants —
//
//	refCycles = nrefs·issue                   (the access issue slots)
//	stallD    = max(0, lastRead·issue + L1HitLat − overlap − refCycles)
//	computeD  = Compute(ops)'s quantum-chunked advance at the solo rate
//
// — where lastRead is the last read ref's position (its Done is the
// iteration's readsDone). stallD is translation-invariant: both the
// stall target and the post-refs clock shift with the iteration start,
// so their difference is constant, and whenever RunRegular's
// readsDone > overlap guard would decline the stall the difference is
// ≤ 0. The commit replays k iterations' statistics exactly like
// bulkBatch and adds k·(refCycles+stallD) memory cycles and
// k·computeD compute cycles.
func (p *Pipe) loopBatch(i0, maxIter int, refs []BulkRef, ops int64, overlap uint64, body func(int)) (int, BailReason) {
	nrefs := len(refs)
	if nrefs == 0 || nrefs > maxBatchRefs {
		return 0, BailRefShape
	}
	if p.wlen >= p.mlp {
		return 0, BailWindowFull
	}
	c := p.c
	if c.m.nlive >= 2 {
		return 0, BailSiblingClock
	}
	ms := c.m.Mem
	l1Line := Addr(ms.cfg.L1Line)

	// Resolve a pin for every ref, bound k by each pin's window, and
	// find the last read (whose Done is each iteration's readsDone).
	k := uint64(maxIter)
	var pinOf [maxBatchRefs]*pin
	lastRead := -1
	for r := 0; r < nrefs; r++ {
		ref := &refs[r]
		if ref.Size <= 0 || ref.Stride < 0 || ref.Size > int(l1Line) ||
			(ref.Stride > 0 && ref.Stride+ref.Size > int(l1Line)) ||
			(ref.Write && ref.Hint == HintNonTemporal) {
			return 0, BailRefShape
		}
		addr := ref.Base + Addr(i0*ref.Stride)
		end := addr + Addr(ref.Size)
		line := addr &^ (l1Line - 1)
		if end > line+l1Line {
			return 0, BailNoPin // straddles two lines at this position
		}
		pn, bail := p.pinFor(line)
		if pn == nil {
			return 0, bail
		}
		if ref.Stride > 0 {
			if kp := (pn.hi - addr - Addr(ref.Size)) / Addr(ref.Stride); kp+1 < k {
				k = kp + 1
			}
		}
		if k < 2 {
			return 0, BailShortBatch
		}
		pinOf[r] = pn
		if !ref.Write {
			lastRead = r
		}
	}

	// The three per-iteration clock deltas (see the function comment).
	issue := p.issue
	refCycles := uint64(nrefs) * issue
	var stallD uint64
	if ops > 0 && lastRead >= 0 {
		if s := int64(lastRead)*int64(issue) + int64(ms.cfg.L1HitLat) -
			int64(overlap) - int64(refCycles); s > 0 {
			stallD = uint64(s)
		}
	}
	var computeD uint64
	if ops > 0 {
		// Replay Compute's quantum-chunked advance once; with one live
		// context the rate cannot change mid-batch.
		rate := c.computeRate()
		work := float64(ops) * c.m.cfg.CPI
		q := float64(c.m.cfg.Quantum)
		for work > 0 {
			chunk := work
			if chunk > q {
				chunk = q
			}
			dt := uint64(chunk/rate + 0.5)
			if dt == 0 {
				dt = 1
			}
			computeD += dt
			work -= chunk
		}
	}

	// Commit: replay k iterations' worth of mutations in closed form.
	accesses := k * uint64(nrefs)
	cov := &c.m.Cov[c.p.id]
	cov.FastAccesses += accesses
	cov.BatchedIters += k
	ms.Stats.Accesses += accesses
	ms.TLB.Stats.Hits += accesses
	tlb0 := ms.TLB.tick
	ms.TLB.tick += accesses
	l10 := ms.L1.tick
	ms.L1.tick += accesses
	ms.L1.Stats.Hits += accesses
	ms.Stats.ByLevel[LevelL1] += accesses
	now0 := c.p.now
	bw := &ms.BW[c.p.id]
	for r := 0; r < nrefs; r++ {
		pn := pinOf[r]
		pn.hit = true
		// Last touch is iteration k-1, position r; ref-order stamping
		// makes the last writer win for refs sharing an entry or line.
		pn.te.lru = tlb0 + (k-1)*uint64(nrefs) + uint64(r) + 1
		pn.ln.lru = l10 + (k-1)*uint64(nrefs) + uint64(r) + 1
		if refs[r].Write {
			pn.ln.dirty = true
		}
		bw.Bytes[LevelL1] += k * uint64(refs[r].Size)
		bw.Cycles[LevelL1] += k * ms.cfg.L1HitLat
	}
	iterD := refCycles + stallD + computeD
	c.p.now += k * iterD
	c.p.memCycles += k * (refCycles + stallD)
	c.p.computeCycles += k * computeD
	if done := now0 + (k-1)*iterD + uint64(nrefs-1)*issue + ms.cfg.L1HitLat; done > p.slowest {
		p.slowest = done
	}
	p.pending = (p.pending + int(accesses)) % pipeParkBatch
	if ops > 0 {
		c.p.state = StateCompute
	} else {
		c.p.state = p.state
	}
	if body != nil {
		for j := uint64(0); j < k; j++ {
			body(i0 + int(j))
		}
	}
	return int(k), 0
}

// pinFor returns the validated pin covering the one-L1-line window at
// line, or nil with the typed reason. Validation re-resolves stale
// cache/TLB pointers in place (generation mismatches) and invalidates
// the pin when the line or page is no longer resident.
func (p *Pipe) pinFor(line Addr) (*pin, BailReason) {
	ms := p.c.m.Mem
	pn := p.ps.lookup(line)
	if pn == nil {
		return nil, BailNoPin
	}
	if pn.tlbGen != ms.TLB.gen {
		te := ms.TLB.probe(line >> ms.TLB.pageBits)
		if te == nil {
			pn.valid = false
			return nil, BailTLBGenMiss
		}
		pn.te = te
		pn.tlbGen = ms.TLB.gen
	}
	if pn.l1Gen != ms.L1.gen || pn.l1SetGen != ms.L1.setGen[pn.set] {
		set, tag := ms.L1.index(line)
		ln := ms.L1.findLine(set, tag)
		if ln == nil {
			pn.valid = false
			return nil, BailL1GenMiss
		}
		pn.ln = ln
		pn.l1Gen = ms.L1.gen
		pn.l1SetGen = ms.L1.setGen[set]
	}
	return pn, 0
}

// maxBatchRefs bounds the per-batch stack state of bulkBatch. 16
// admits the widest lowered patterns (a multi-index gather's index
// streams plus per-group array and SRF sides).
const maxBatchRefs = 16

// MaxBulkRefs is the widest reference pattern one AccessBulk call can
// batch; wider calls always run on the reference path. Exposed so the
// svm run coalescer can gate its lowering.
const MaxBulkRefs = maxBatchRefs

// bulkBatch tries to execute iterations k0, k0+1, ... of the reference
// pattern as one aggregate state update, returning how many iterations
// it consumed (0 = not batchable right now; the caller runs one
// reference iteration and retries) and, when it consumed none, the
// typed reason it declined (feeding the coverage profiler).
//
// A run of iterations is batchable when, for its whole length, every
// access is a guaranteed L1 hit or WC post (proven by a pin, like
// fastAccess) and every park the reference path would make is a no-op
// (the engine would re-pick this context). Under those conditions each
// access's mutations are fixed increments — tick++, lru=tick, stats++,
// clock += issue — so k iterations apply in closed form: sums for the
// counters, final-position values for the LRU stamps. Refs sharing a
// TLB entry or cache line are stamped in reference order so the last
// writer matches. The result is bit-identical to the per-access loop.
func (p *Pipe) bulkBatch(k0, maxIter int, refs []BulkRef) (int, BailReason) {
	nrefs := len(refs)
	if nrefs == 0 || nrefs > maxBatchRefs {
		return 0, BailRefShape
	}
	if p.wlen >= p.mlp {
		return 0, BailWindowFull
	}
	c := p.c
	ms := c.m.Mem
	l1Line := Addr(ms.cfg.L1Line)
	l2Line := Addr(ms.cfg.L2Line)

	// How far may the clock advance before a park would actually yield?
	// (Engine rule: smallest clock runs, ties to the smaller id.)
	budget := uint64(1<<64 - 1)
	if c.m.nlive >= 2 {
		if sib := c.m.sibling(c.p.id); sib != nil && sib.state != StateDone && !sib.sleeping {
			bound := sib.now
			if c.p.id > sib.id {
				if bound == 0 {
					return 0, BailSiblingClock
				}
				bound--
			}
			if c.p.now > bound {
				return 0, BailSiblingClock
			}
			budget = bound - c.p.now
		}
	}
	k := uint64(maxIter)
	if p.issue > 0 {
		if kb := budget / (uint64(nrefs) * p.issue); kb < k {
			k = kb
		}
	}
	if k < 2 {
		return 0, BailSiblingClock
	}

	// Resolve a pin for every ref and bound k by each pin's window.
	var (
		pinOf  [maxBatchRefs]*pin
		isWC   [maxBatchRefs]bool
		cpos   [maxBatchRefs]int // position among cacheable refs
		ncache int
		sawWC  bool
	)
	ps := p.ps
	for r := 0; r < nrefs; r++ {
		ref := &refs[r]
		if ref.Size <= 0 || ref.Stride < 0 || ref.Size > int(l1Line) ||
			(ref.Stride > 0 && ref.Stride+ref.Size > int(l1Line)) {
			// Oversized refs span lines every iteration, and a stride
			// too wide for two consecutive iterations to share a line
			// can never yield a run of 2. Either way a single-line pin
			// cannot prove a batch — permanently unbatchable, which the
			// backoff exploits (fastAccess still serves them singly).
			return 0, BailRefShape
		}
		addr := ref.Base + Addr(k0*ref.Stride)
		end := addr + Addr(ref.Size)
		wc := ref.Write && ref.Hint == HintNonTemporal
		var pn *pin
		if wc {
			if sawWC {
				return 0, BailWCState // two NT-store streams share one WC buffer: not batchable
			}
			sawWC = true
			pn = &ps.wc
			if !pn.valid || addr < pn.lo || end > pn.hi {
				return 0, BailNoPin
			}
		} else {
			line := addr &^ (l1Line - 1)
			if end > line+l1Line {
				return 0, BailNoPin // straddles two lines at this position
			}
			var bail BailReason
			pn, bail = p.pinFor(line)
			if pn == nil {
				return 0, bail
			}
		}
		if wc && pn.tlbGen != ms.TLB.gen {
			te := ms.TLB.probe(pn.lo >> ms.TLB.pageBits)
			if te == nil {
				pn.valid = false
				return 0, BailTLBGenMiss
			}
			pn.te = te
			pn.tlbGen = ms.TLB.gen
		}
		if wc {
			wcb := &ms.wc[c.p.id]
			if !wcb.open || wcb.line != addr&^(l2Line-1) {
				return 0, BailWCState
			}
			// Stores must stay in the open buffer's line without
			// filling it, and each must fit in one L1 chunk.
			lineEnd := wcb.line + l2Line
			if end > lineEnd {
				return 0, BailWCState
			}
			if ref.Stride > 0 {
				if kl := (lineEnd - addr - Addr(ref.Size)) / Addr(ref.Stride); kl+1 < k {
					k = kl + 1
				}
			}
			if kc := uint64(ms.cfg.L2Line-1-wcb.bytes) / uint64(ref.Size); kc < k {
				k = kc
			}
			if k < 2 {
				return 0, BailShortBatch
			}
			if ref.Stride > 0 {
				for j := uint64(0); j < k; j++ {
					a := addr + Addr(j*uint64(ref.Stride))
					if (a&(l1Line-1))+Addr(ref.Size) > l1Line {
						k = j
						break
					}
				}
			} else if (addr&(l1Line-1))+Addr(ref.Size) > l1Line {
				return 0, BailWCState
			}
			if k < 2 {
				return 0, BailShortBatch
			}
		} else {
			// Iterations whose access stays inside the pinned line
			// (a zero stride never leaves it).
			if ref.Stride > 0 {
				if kp := (pn.hi - addr - Addr(ref.Size)) / Addr(ref.Stride); kp+1 < k {
					k = kp + 1
				}
			}
			if k < 2 {
				return 0, BailShortBatch
			}
			cpos[r] = ncache
			ncache++
		}
		pinOf[r] = pn
		isWC[r] = wc
	}

	// Commit: replay k iterations' worth of mutations in closed form.
	c.p.state = p.state
	accesses := k * uint64(nrefs)
	cov := &c.m.Cov[c.p.id]
	cov.FastAccesses += accesses
	cov.BatchedIters += k
	ms.Stats.Accesses += accesses
	ms.TLB.Stats.Hits += accesses
	tlb0 := ms.TLB.tick
	ms.TLB.tick += accesses
	var l10 uint64
	if ncache > 0 {
		l10 = ms.L1.tick
		ms.L1.tick += k * uint64(ncache)
		ms.L1.Stats.Hits += k * uint64(ncache)
		ms.Stats.ByLevel[LevelL1] += k * uint64(ncache)
	}
	now0 := c.p.now
	if p.issue > 0 {
		adv := accesses * p.issue
		c.p.now += adv
		c.p.memCycles += adv
	}
	bw := &ms.BW[c.p.id]
	for r := 0; r < nrefs; r++ {
		pn := pinOf[r]
		pn.hit = true
		// The ref's last access is iteration k-1, position r (or its
		// cacheable position) within it; stamping in ref order makes
		// the last writer win for refs sharing an entry or line.
		pn.te.lru = tlb0 + (k-1)*uint64(nrefs) + uint64(r) + 1
		var done uint64
		if isWC[r] {
			wcb := &ms.wc[c.p.id]
			wcb.bytes += int(k) * refs[r].Size
			ms.Stats.ByLevel[LevelWC] += k
			bw.Bytes[LevelWC] += k * uint64(refs[r].Size)
			bw.Cycles[LevelWC] += k
			done = now0 + ((k-1)*uint64(nrefs)+uint64(r))*p.issue + 1
		} else {
			pn.ln.lru = l10 + (k-1)*uint64(ncache) + uint64(cpos[r]) + 1
			if refs[r].Write {
				pn.ln.dirty = true
			}
			bw.Bytes[LevelL1] += k * uint64(refs[r].Size)
			bw.Cycles[LevelL1] += k * ms.cfg.L1HitLat
			done = now0 + ((k-1)*uint64(nrefs)+uint64(r))*p.issue + ms.cfg.L1HitLat
		}
		if done > p.slowest {
			p.slowest = done
		}
	}
	p.pending = (p.pending + int(accesses)) % pipeParkBatch
	return int(k), 0
}

// maxAccessChunks bounds the L1 lines one pinned access may span (an
// access larger than a line splits into per-line chunks on the
// reference path; fastAccess replays the same per-chunk mutations).
const maxAccessChunks = 8

// fastAccess tries to satisfy the access from the pin set, returning
// ok=false when no pin proves it resident. Accesses spanning several
// L1 lines are served when every line is pinned, replaying the
// reference path's per-chunk mutations in chunk order.
func (p *Pipe) fastAccess(addr Addr, size int, write bool, hint Hint) (AccessResult, bool) {
	if size <= 0 {
		return AccessResult{}, false // let the reference path panic
	}
	c := p.c
	ms := c.m.Mem
	cov := &c.m.Cov[c.p.id]
	ps := p.ps
	end := addr + Addr(size)
	l1Line := Addr(ms.cfg.L1Line)

	if write && hint == HintNonTemporal {
		pn := &ps.wc
		if !pn.valid || addr < pn.lo || end > pn.hi {
			ps.chill(addr &^ (l1Line - 1))
			cov.Bails[BailNoPin]++
			return AccessResult{}, false
		}
		if pn.tlbGen != ms.TLB.gen {
			te := ms.TLB.probe(pn.lo >> ms.TLB.pageBits)
			if te == nil {
				pn.valid = false
				ps.chill(addr &^ (l1Line - 1))
				cov.Bails[BailTLBGenMiss]++
				return AccessResult{}, false
			}
			pn.te = te
			pn.tlbGen = ms.TLB.gen
		}
		// The non-temporal store must append to the open WC buffer
		// without filling it (a fill flushes to the bus — slow path),
		// and must stay within one L1 line (larger accesses split into
		// chunks).
		if end > (addr&^(l1Line-1))+l1Line {
			cov.Bails[BailWCState]++
			return AccessResult{}, false
		}
		wcb := &ms.wc[c.p.id]
		if !wcb.open || wcb.line != addr&^Addr(ms.cfg.L2Line-1) || wcb.bytes+size >= ms.cfg.L2Line {
			cov.Bails[BailWCState]++
			return AccessResult{}, false
		}

		// The store is a guaranteed post; replay the exact mutations of
		// Pipe.Access → MemSystem.Access for this case.
		c.p.state = p.state
		start := c.p.now
		if p.wlen == p.mlp {
			oldest := p.window[p.whead]
			p.whead++
			if p.whead == p.mlp {
				p.whead = 0
			}
			p.wlen--
			if oldest > start {
				start = oldest
			}
		}
		ms.Stats.Accesses++
		ms.TLB.tick++
		pn.te.lru = ms.TLB.tick
		ms.TLB.Stats.Hits++
		cov.FastAccesses++
		bw := &ms.BW[c.p.id]
		wcb.bytes += size
		ms.Stats.ByLevel[LevelWC]++
		bw.Bytes[LevelWC] += uint64(size)
		bw.Cycles[LevelWC]++
		r := AccessResult{Done: start + 1, Level: LevelWC}
		p.finishFast(start, r)
		ps.warm(addr &^ (l1Line - 1))
		return r, true
	}

	// Cacheable, single L1 line — the common case: one pin, no chunk
	// bookkeeping.
	if line := addr &^ (l1Line - 1); end <= line+l1Line {
		pn, bail := p.pinFor(line)
		if pn == nil {
			ps.chill(line)
			cov.Bails[bail]++
			return AccessResult{}, false
		}
		c.p.state = p.state
		start := c.p.now
		if p.wlen == p.mlp {
			oldest := p.window[p.whead]
			p.whead++
			if p.whead == p.mlp {
				p.whead = 0
			}
			p.wlen--
			if oldest > start {
				start = oldest
			}
		}
		pn.hit = true
		ms.Stats.Accesses++
		ms.TLB.tick++
		pn.te.lru = ms.TLB.tick
		ms.TLB.Stats.Hits++
		l1 := ms.L1
		l1.tick++
		pn.ln.lru = l1.tick
		if write {
			pn.ln.dirty = true
		}
		l1.Stats.Hits++
		ms.Stats.ByLevel[LevelL1]++
		bw := &ms.BW[c.p.id]
		bw.Bytes[LevelL1] += uint64(size)
		bw.Cycles[LevelL1] += ms.cfg.L1HitLat
		cov.FastAccesses++
		r := AccessResult{Done: start + ms.cfg.L1HitLat, Level: LevelL1}
		p.finishFast(start, r)
		ps.warm(line)
		return r, true
	}

	// Cacheable, spanning lines: every chunk's line must be pinned (and
	// fresh).
	var (
		pins   [maxAccessChunks]*pin
		sizes  [maxAccessChunks]int
		nchunk int
	)
	for cur := addr; cur < end; {
		line := cur &^ (l1Line - 1)
		chunkEnd := line + l1Line
		if chunkEnd > end {
			chunkEnd = end
		}
		if nchunk == maxAccessChunks {
			ps.chill(line)
			cov.Bails[BailNoPin]++
			return AccessResult{}, false
		}
		pn, bail := p.pinFor(line)
		if pn == nil {
			ps.chill(line)
			cov.Bails[bail]++
			return AccessResult{}, false
		}
		pins[nchunk] = pn
		sizes[nchunk] = int(chunkEnd - cur)
		nchunk++
		cur = chunkEnd
	}

	// Every chunk is a guaranteed hit; replay the exact mutations of
	// Pipe.Access → MemSystem.Access in chunk order.
	c.p.state = p.state
	start := c.p.now
	if p.wlen == p.mlp {
		oldest := p.window[p.whead]
		p.whead++
		if p.whead == p.mlp {
			p.whead = 0
		}
		p.wlen--
		if oldest > start {
			start = oldest
		}
	}
	bw := &ms.BW[c.p.id]
	l1 := ms.L1
	for i := 0; i < nchunk; i++ {
		pn := pins[i]
		pn.hit = true
		ps.warm(pn.lo)
		ms.Stats.Accesses++
		ms.TLB.tick++
		pn.te.lru = ms.TLB.tick
		ms.TLB.Stats.Hits++
		l1.tick++
		pn.ln.lru = l1.tick
		if write {
			pn.ln.dirty = true
		}
		l1.Stats.Hits++
		ms.Stats.ByLevel[LevelL1]++
		bw.Bytes[LevelL1] += uint64(sizes[i])
		bw.Cycles[LevelL1] += ms.cfg.L1HitLat
	}
	cov.FastAccesses++
	r := AccessResult{Done: start + ms.cfg.L1HitLat, Level: LevelL1}
	p.finishFast(start, r)
	return r, true
}

// finishFast applies the tail of Pipe.Access for a fast-served access:
// slowest tracking, clock advance to the issue point, and the park
// cadence. (L1 hits and posted WC stores never occupy a window slot.)
func (p *Pipe) finishFast(start uint64, r AccessResult) {
	c := p.c
	if r.Done > p.slowest {
		p.slowest = r.Done
	}
	t := start + p.issue
	if t > c.p.now {
		c.p.memCycles += t - c.p.now
		c.p.now = t
	}
	p.pending++
	if p.pending >= pipeParkBatch {
		p.pending = 0
		c.park()
	}
}

// capturePin re-arms pins after a reference-path access: every line
// (or the WC page) that access touched is now resident, so subsequent
// accesses inside them qualify for fastAccess.
//
// Capture is eager: an L1 hit, a WC post, *and* any fill (L2, an
// in-flight prefetch, DRAM) all leave their lines L1-resident, so all
// of them pin — a stream that crosses into a new line pays exactly one
// reference iteration before the batch path re-arms. The exception is
// a cold pin set (the signature of random traffic): there, fills stop
// pinning into it — they would tax every random miss for pins that
// never hit — and only proven reuse (an L1 hit or WC post) re-arms,
// with the probation semantics of pinColdLimit. Pin policy only
// decides which accesses take the fast path, never what any access
// does, so these heuristics cannot affect simulated timing.
func (p *Pipe) capturePin(addr Addr, size int, level Level) {
	ms := p.c.m.Mem
	ps := p.ps
	if level == LevelWC {
		page := addr >> ms.TLB.pageBits
		te := ms.TLB.probe(page)
		if te == nil {
			return
		}
		lo := page << ms.TLB.pageBits
		ps.wc = pin{valid: true, wc: true, te: te, tlbGen: ms.TLB.gen,
			lo: lo, hi: lo + (1 << ms.TLB.pageBits)}
		ps.captureGen++
		ps.thaw(addr &^ (Addr(ms.cfg.L1Line) - 1))
		return
	}
	fill := level != LevelL1
	if fill && ps.waste >= pinWasteLimit {
		return // fill pins measurably useless here: stop speculating
	}
	// Pin every line the access touched. Both an L1 scan hit and a miss
	// fill stash their line, so the set scan is almost always skipped.
	l1 := ms.L1
	l1Line := Addr(ms.cfg.L1Line)
	last := l1.LineAddr(addr + Addr(size) - 1)
	for line := l1.LineAddr(addr); line <= last; line += l1Line {
		if fill && ps.cold[pinSlot(line)] >= pinColdLimit {
			continue // random traffic here: don't pin on misses
		}
		var ln *cacheLine
		var set int
		if l1.lastHit != nil && l1.lastHitLine == line &&
			l1.lastHitGen == l1.gen && l1.lastHitSetGen == l1.setGen[l1.lastHitSet] {
			ln, set = l1.lastHit, l1.lastHitSet
		} else {
			var tag uint64
			set, tag = l1.index(line)
			ln = l1.findLine(set, tag)
			if ln == nil {
				continue
			}
		}
		te := ms.TLB.probe(line >> ms.TLB.pageBits)
		if te == nil {
			continue
		}
		ps.install(pin{valid: true, fill: fill, lo: line, hi: line + l1Line,
			ln: ln, te: te, set: set,
			l1Gen: l1.gen, l1SetGen: l1.setGen[set], tlbGen: ms.TLB.gen})
		ps.captureGen++
		if !fill {
			ps.thaw(line)
		}
	}
}
