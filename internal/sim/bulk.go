package sim

// This file implements the cycle-exact bulk fast path. Stream
// workloads (sequential or constant-stride gathers/scatters, and the
// regular baseline's interleaved loops) touch the same cache line, TLB
// page or write-combining buffer many times in a row, so almost every
// access repeats the hierarchy walk the previous access just did. Each
// Pipe keeps a small set of "pins": windows of memory proven resident
// (an L1 line plus its TLB entry, or a WC-buffer page). An access that
// lands inside a pin replays *exactly* the state mutations the
// per-access reference path would perform — same tick increments, same
// LRU updates, same statistics, same clock arithmetic, same park
// cadence — skipping only the redundant searches. Anything a pin
// cannot prove resident (line/page crossings, evictions by the sibling
// context, WC flushes) takes the ordinary path, whose result re-arms a
// pin. Generation counters on the caches and TLB detect foreign
// mutations that could silently unpin a window.
//
// Because the fast step performs literally the same mutations as the
// reference path, the two are bit-identical by construction; the
// differential tests in bulk_test.go, internal/svm and internal/bench
// enforce this.

// defaultFastPath controls whether newly created Machines use the bulk
// fast path. It mirrors defaultObserver: differential tests need to
// reach machines created deep inside app packages.
var defaultFastPath = true

// SetDefaultFastPath enables or disables the bulk fast path on every
// Machine created after this call. Set it from one goroutine before
// any machine is built.
func SetDefaultFastPath(on bool) { defaultFastPath = on }

// DefaultFastPath reports the current default (ledger entries record
// which mode produced a measurement).
func DefaultFastPath() bool { return defaultFastPath }

// SetFastPath enables or disables the bulk fast path on this machine.
func (m *Machine) SetFastPath(on bool) { m.fastPath = on }

// FastPath reports whether the bulk fast path is enabled.
func (m *Machine) FastPath() bool { return m.fastPath }

// pipePins is the pin-set size: enough for every concurrent reference
// stream of the widest loop (array sides, SRF side, index arrays).
const pipePins = 8

// pin is one proven-resident window.
type pin struct {
	valid bool
	wc    bool // pins a WC-buffer page rather than an L1 line

	lo, hi Addr       // the window: one L1 line (cacheable) or one page (wc)
	ln     *cacheLine // L1-resident line, cacheable pins only
	te     *tlbEntry  // TLB entry mapping the window
	set    int        // L1 set of ln

	l1Gen    uint64
	l1SetGen uint64
	tlbGen   uint64
}

// BulkRef describes one reference pattern of a bulk operation:
// iteration k of the operation touches [Base+k*Stride, Base+k*Stride+Size).
type BulkRef struct {
	Base   Addr
	Size   int
	Stride int
	Write  bool
	Hint   Hint
}

// AccessBulk issues n iterations over the given reference patterns,
// bit-identically to the equivalent loop nest
//
//	for k := 0; k < n; k++ {
//		for _, r := range refs {
//			p.Access(r.Base+Addr(k*r.Stride), r.Size, r.Write, r.Hint)
//		}
//	}
//
// Declaring the whole pattern in one call is what lets the fast path
// coalesce: whenever every reference of an iteration is pinned
// (guaranteed L1 hit or write-combining post) and the engine would not
// switch contexts, a whole run of iterations collapses into one
// closed-form state update (see bulkBatch) — the simulator walks cache
// lines, not records. With the fast path disabled this is the literal
// reference loop.
func (p *Pipe) AccessBulk(n int, refs ...BulkRef) {
	fast := p.c.m.fastPath
	cov := &p.c.m.Cov[p.c.p.id]
	if !fast {
		cov.Bails[BailDisabled]++
	}
	for k := 0; k < n; {
		if fast {
			adv, bail := p.bulkBatch(k, n-k, refs)
			if adv > 0 {
				k += adv
				continue
			}
			cov.Bails[bail]++
		}
		for i := range refs {
			r := &refs[i]
			p.Access(r.Base+Addr(k*r.Stride), r.Size, r.Write, r.Hint)
		}
		k++
	}
}

// maxBatchRefs bounds the per-batch stack state of bulkBatch.
const maxBatchRefs = 8

// bulkBatch tries to execute iterations k0, k0+1, ... of the reference
// pattern as one aggregate state update, returning how many iterations
// it consumed (0 = not batchable right now; the caller runs one
// reference iteration and retries) and, when it consumed none, the
// typed reason it declined (feeding the coverage profiler).
//
// A run of iterations is batchable when, for its whole length, every
// access is a guaranteed L1 hit or WC post (proven by a pin, like
// fastAccess) and every park the reference path would make is a no-op
// (the engine would re-pick this context). Under those conditions each
// access's mutations are fixed increments — tick++, lru=tick, stats++,
// clock += issue — so k iterations apply in closed form: sums for the
// counters, final-position values for the LRU stamps. Refs sharing a
// TLB entry or cache line are stamped in reference order so the last
// writer matches. The result is bit-identical to the per-access loop.
func (p *Pipe) bulkBatch(k0, maxIter int, refs []BulkRef) (int, BailReason) {
	nrefs := len(refs)
	if nrefs == 0 || nrefs > maxBatchRefs {
		return 0, BailRefShape
	}
	if p.wlen >= p.mlp {
		return 0, BailWindowFull
	}
	c := p.c
	ms := c.m.Mem
	l1Line := Addr(ms.cfg.L1Line)
	l2Line := Addr(ms.cfg.L2Line)

	// How far may the clock advance before a park would actually yield?
	// (Engine rule: smallest clock runs, ties to the smaller id.)
	budget := uint64(1<<64 - 1)
	if c.m.nlive >= 2 {
		if sib := c.m.sibling(c.p.id); sib != nil && sib.state != StateDone && !sib.sleeping {
			bound := sib.now
			if c.p.id > sib.id {
				if bound == 0 {
					return 0, BailSiblingClock
				}
				bound--
			}
			if c.p.now > bound {
				return 0, BailSiblingClock
			}
			budget = bound - c.p.now
		}
	}
	k := uint64(maxIter)
	if p.issue > 0 {
		if kb := budget / (uint64(nrefs) * p.issue); kb < k {
			k = kb
		}
	}
	if k < 2 {
		return 0, BailSiblingClock
	}

	// Resolve a pin for every ref and bound k by each pin's window.
	var (
		pinOf  [maxBatchRefs]*pin
		isWC   [maxBatchRefs]bool
		cpos   [maxBatchRefs]int // position among cacheable refs
		ncache int
		sawWC  bool
	)
	for r := 0; r < nrefs; r++ {
		ref := &refs[r]
		if ref.Size <= 0 || ref.Stride <= 0 {
			return 0, BailRefShape
		}
		addr := ref.Base + Addr(k0*ref.Stride)
		end := addr + Addr(ref.Size)
		wc := ref.Write && ref.Hint == HintNonTemporal
		if wc {
			if sawWC {
				return 0, BailWCState // two NT-store streams share one WC buffer: not batchable
			}
			sawWC = true
		}
		var pn *pin
		for i := range p.pins {
			q := &p.pins[i]
			if q.valid && q.wc == wc && addr >= q.lo && end <= q.hi {
				pn = q
				break
			}
		}
		if pn == nil {
			return 0, BailNoPin
		}
		if pn.tlbGen != ms.TLB.gen {
			te := ms.TLB.probe(pn.lo >> ms.TLB.pageBits)
			if te == nil {
				pn.valid = false
				return 0, BailTLBGenMiss
			}
			pn.te = te
			pn.tlbGen = ms.TLB.gen
		}
		if wc {
			wcb := &ms.wc[c.p.id]
			if !wcb.open || wcb.line != addr&^(l2Line-1) {
				return 0, BailWCState
			}
			// Stores must stay in the open buffer's line without
			// filling it, and each must fit in one L1 chunk.
			lineEnd := wcb.line + l2Line
			if end > lineEnd {
				return 0, BailWCState
			}
			if kl := (lineEnd - addr - Addr(ref.Size)) / Addr(ref.Stride); kl+1 < k {
				k = kl + 1
			}
			if kc := uint64(ms.cfg.L2Line-1-wcb.bytes) / uint64(ref.Size); kc < k {
				k = kc
			}
			if k < 2 {
				return 0, BailShortBatch
			}
			for j := uint64(0); j < k; j++ {
				a := addr + Addr(j*uint64(ref.Stride))
				if (a&(l1Line-1))+Addr(ref.Size) > l1Line {
					k = j
					break
				}
			}
			if k < 2 {
				return 0, BailShortBatch
			}
		} else {
			if pn.l1Gen != ms.L1.gen || pn.l1SetGen != ms.L1.setGen[pn.set] {
				set, tag := ms.L1.index(pn.lo)
				ln := ms.L1.findLine(set, tag)
				if ln == nil {
					pn.valid = false
					return 0, BailL1GenMiss
				}
				pn.ln = ln
				pn.l1Gen = ms.L1.gen
				pn.l1SetGen = ms.L1.setGen[set]
			}
			// Iterations whose access stays inside the pinned line.
			if kp := (pn.hi - addr - Addr(ref.Size)) / Addr(ref.Stride); kp+1 < k {
				k = kp + 1
			}
			if k < 2 {
				return 0, BailShortBatch
			}
			cpos[r] = ncache
			ncache++
		}
		pinOf[r] = pn
		isWC[r] = wc
	}

	// Commit: replay k iterations' worth of mutations in closed form.
	c.p.state = p.state
	accesses := k * uint64(nrefs)
	cov := &c.m.Cov[c.p.id]
	cov.FastAccesses += accesses
	cov.BatchedIters += k
	ms.Stats.Accesses += accesses
	ms.TLB.Stats.Hits += accesses
	tlb0 := ms.TLB.tick
	ms.TLB.tick += accesses
	var l10 uint64
	if ncache > 0 {
		l10 = ms.L1.tick
		ms.L1.tick += k * uint64(ncache)
		ms.L1.Stats.Hits += k * uint64(ncache)
		ms.Stats.ByLevel[LevelL1] += k * uint64(ncache)
	}
	now0 := c.p.now
	if p.issue > 0 {
		adv := accesses * p.issue
		c.p.now += adv
		c.p.memCycles += adv
	}
	bw := &ms.BW[c.p.id]
	for r := 0; r < nrefs; r++ {
		pn := pinOf[r]
		// The ref's last access is iteration k-1, position r (or its
		// cacheable position) within it; stamping in ref order makes
		// the last writer win for refs sharing an entry or line.
		pn.te.lru = tlb0 + (k-1)*uint64(nrefs) + uint64(r) + 1
		var done uint64
		if isWC[r] {
			wcb := &ms.wc[c.p.id]
			wcb.bytes += int(k) * refs[r].Size
			ms.Stats.ByLevel[LevelWC] += k
			bw.Bytes[LevelWC] += k * uint64(refs[r].Size)
			bw.Cycles[LevelWC] += k
			done = now0 + ((k-1)*uint64(nrefs)+uint64(r))*p.issue + 1
		} else {
			pn.ln.lru = l10 + (k-1)*uint64(ncache) + uint64(cpos[r]) + 1
			if refs[r].Write {
				pn.ln.dirty = true
			}
			bw.Bytes[LevelL1] += k * uint64(refs[r].Size)
			bw.Cycles[LevelL1] += k * ms.cfg.L1HitLat
			done = now0 + ((k-1)*uint64(nrefs)+uint64(r))*p.issue + ms.cfg.L1HitLat
		}
		if done > p.slowest {
			p.slowest = done
		}
	}
	p.pending = (p.pending + int(accesses)) % pipeParkBatch
	return int(k), 0
}

// pinColdLimit is the miss streak after which Pipe.Access stops
// probing the pin set: on random (indexed) traffic pins essentially
// never match, so the per-access scan is pure overhead. Any pin hit
// resets the streak; a capture while cold grants exactly one probed
// access (probation) — a stream that settles back into line reuse
// hits that probe and is fully warm again after one slow access,
// while random traffic wastes at most one probe per capture. Like all
// pin policy this changes only which path runs, never any simulated
// state.
const pinColdLimit = 32

// fastAccess tries to satisfy the access from the pin set, returning
// ok=false when no pin proves it resident.
func (p *Pipe) fastAccess(addr Addr, size int, write bool, hint Hint) (AccessResult, bool) {
	if size <= 0 {
		return AccessResult{}, false // let the reference path panic
	}
	c := p.c
	ms := c.m.Mem
	cov := &c.m.Cov[c.p.id]
	wc := write && hint == HintNonTemporal
	end := addr + Addr(size)
	bail := BailNoPin
	for i := range p.pins {
		pn := &p.pins[i]
		if !pn.valid || pn.wc != wc || addr < pn.lo || end > pn.hi {
			continue
		}
		if pn.tlbGen != ms.TLB.gen {
			te := ms.TLB.probe(pn.lo >> ms.TLB.pageBits)
			if te == nil {
				pn.valid = false
				bail = BailTLBGenMiss
				continue
			}
			pn.te = te
			pn.tlbGen = ms.TLB.gen
		}
		var wcb *wcBuffer
		if wc {
			// The non-temporal store must append to the open WC buffer
			// without filling it (a fill flushes to the bus — slow
			// path), and must stay within one L1 line (larger accesses
			// split into chunks).
			l1Line := Addr(ms.cfg.L1Line)
			if end > (addr&^(l1Line-1))+l1Line {
				cov.Bails[BailWCState]++
				return AccessResult{}, false
			}
			wcb = &ms.wc[c.p.id]
			if !wcb.open || wcb.line != addr&^Addr(ms.cfg.L2Line-1) || wcb.bytes+size >= ms.cfg.L2Line {
				cov.Bails[BailWCState]++
				return AccessResult{}, false
			}
		} else if pn.l1Gen != ms.L1.gen || pn.l1SetGen != ms.L1.setGen[pn.set] {
			// Something was installed into the pinned set (or the
			// cache was flushed) since the pin; re-probe the line.
			set, tag := ms.L1.index(pn.lo)
			ln := ms.L1.findLine(set, tag)
			if ln == nil {
				pn.valid = false
				bail = BailL1GenMiss
				continue
			}
			pn.ln = ln
			pn.l1Gen = ms.L1.gen
			pn.l1SetGen = ms.L1.setGen[set]
		}

		// The access is a guaranteed hit; replay the exact mutations
		// of Pipe.Access → MemSystem.Access for this case.
		c.p.state = p.state
		start := c.p.now
		if p.wlen == p.mlp {
			oldest := p.window[p.whead]
			p.whead++
			if p.whead == p.mlp {
				p.whead = 0
			}
			p.wlen--
			if oldest > start {
				start = oldest
			}
		}

		ms.Stats.Accesses++
		ms.TLB.tick++
		pn.te.lru = ms.TLB.tick
		ms.TLB.Stats.Hits++
		cov.FastAccesses++
		bw := &ms.BW[c.p.id]

		r := AccessResult{}
		if wc {
			wcb.bytes += size
			ms.Stats.ByLevel[LevelWC]++
			bw.Bytes[LevelWC] += uint64(size)
			bw.Cycles[LevelWC]++
			r = AccessResult{Done: start + 1, Level: LevelWC}
		} else {
			l1 := ms.L1
			l1.tick++
			pn.ln.lru = l1.tick
			if write {
				pn.ln.dirty = true
			}
			l1.Stats.Hits++
			ms.Stats.ByLevel[LevelL1]++
			bw.Bytes[LevelL1] += uint64(size)
			bw.Cycles[LevelL1] += ms.cfg.L1HitLat
			r = AccessResult{Done: start + ms.cfg.L1HitLat, Level: LevelL1}
		}

		// L1 hits and posted WC stores never occupy a window slot.
		if r.Done > p.slowest {
			p.slowest = r.Done
		}
		t := start + p.issue
		if t > c.p.now {
			c.p.memCycles += t - c.p.now
			c.p.now = t
		}
		p.pending++
		if p.pending >= pipeParkBatch {
			p.pending = 0
			c.park()
		}
		p.pinCold = 0
		return r, true
	}
	p.pinCold++
	cov.Bails[bail]++
	return AccessResult{}, false
}

// capturePin re-arms a pin after a reference-path access: the line (or
// WC page) that access touched is now resident, so subsequent accesses
// inside it qualify for fastAccess.
//
// Only accesses with proven reuse arm a pin: an L1 hit (somebody
// touched the line before and will again — the signature of a stream
// that just crossed into a new line) or a posted write-combining store.
// A fill from L2 or DRAM is just as resident, but capturing there would
// tax every miss of a *random* stream for pins that never hit again;
// a true stream's second access to the line is an L1 hit and arms the
// pin then, giving up 1 fast access per line in exchange for making
// random misses free. Pin policy only decides which accesses take the
// fast path, never what any access does, so this heuristic cannot
// affect simulated timing. level tells the capture which kind of
// window to pin: LevelWC pins the open WC buffer's page, anything else
// pins the L1 line just accessed.
func (p *Pipe) capturePin(addr Addr, size int, level Level) {
	// No duplicate-pin check is needed: a live pin covering this access
	// would have served it in fastAccess, so a capture here implies no
	// such pin exists and round-robin replacement suffices.
	ms := p.c.m.Mem
	if level == LevelWC {
		page := addr >> ms.TLB.pageBits
		te := ms.TLB.probe(page)
		if te == nil {
			return
		}
		lo := page << ms.TLB.pageBits
		p.pins[p.pinNext] = pin{valid: true, wc: true, te: te, tlbGen: ms.TLB.gen,
			lo: lo, hi: lo + (1 << ms.TLB.pageBits)}
		p.pinNext = (p.pinNext + 1) % pipePins
		if p.pinCold >= pinColdLimit {
			p.pinCold = pinColdLimit - 1
		} else {
			p.pinCold = 0
		}
		return
	}
	// Pin the line holding the access's last byte: a forward-moving
	// stream's next accesses land there (or beyond, re-pinning). The
	// lookup that produced this hit usually just stashed the line, so
	// the set scan is normally skipped.
	l1 := ms.L1
	line := l1.LineAddr(addr + Addr(size) - 1)
	ln, set := l1.lastHit, l1.lastHitSet
	if ln == nil || l1.lastHitLine != line ||
		l1.lastHitGen != l1.gen || l1.lastHitSetGen != l1.setGen[set] {
		var tag uint64
		set, tag = l1.index(line)
		ln = l1.findLine(set, tag)
		if ln == nil {
			return
		}
	}
	te := ms.TLB.probe(line >> ms.TLB.pageBits)
	if te == nil {
		return
	}
	p.pins[p.pinNext] = pin{valid: true, lo: line, hi: line + Addr(ms.cfg.L1Line),
		ln: ln, te: te, set: set,
		l1Gen: l1.gen, l1SetGen: l1.setGen[set], tlbGen: ms.TLB.gen}
	p.pinNext = (p.pinNext + 1) % pipePins
	if p.pinCold >= pinColdLimit {
		p.pinCold = pinColdLimit - 1
	} else {
		p.pinCold = 0
	}
}
