package sim

// Bus models the front-side bus plus an open-row DRAM behind it. It is
// the single shared bandwidth resource of the machine: every line fill,
// writeback, write-combining flush and prefetch reserves occupancy
// here, which is how bandwidth contention between the two SMT contexts
// (Fig. 6b) and between demand traffic and prefetch emerges.
//
// DRAM row locality matters: consecutive transfers that stay inside the
// same row proceed at BusEff of peak, while a row switch adds
// RowMissOverhead cycles. This is the mechanism behind the paper's
// observation that *intermixed* sequential streams (the regular-code
// baseline walking three arrays at once) achieve far less bandwidth
// than one bulk copy at a time (§IV-B, LD-ST-COMP).
type Bus struct {
	cfg Config

	busyUntil uint64
	lastRow   uint64
	hasRow    bool

	// Per-context timestamp of last transfer, for the mem∥mem
	// destructive-interference penalty.
	lastUse [2]uint64

	Stats BusStats

	// bw, when non-nil, points at the owning MemSystem's per-context
	// bandwidth attribution; Acquire charges each transfer's bytes and
	// occupancy to the requesting context's LevelMem row, covering
	// demand fills, writebacks, WC flushes and prefetches alike.
	bw *[2]BWStats
}

// BusStats counts bus traffic.
type BusStats struct {
	Transfers  uint64
	Bytes      uint64
	RowHits    uint64
	RowMisses  uint64
	BusyCycles uint64
}

// NewBus returns a bus for the given configuration.
func NewBus(cfg Config) *Bus { return &Bus{cfg: cfg} }

// xferKind distinguishes transfers for efficiency modelling.
type xferKind uint8

const (
	xferFill    xferKind = iota // demand or prefetch line fill
	xferWB                      // dirty-line writeback
	xferWCFull                  // full write-combining buffer flush
	xferWCPart                  // partial write-combining buffer flush
	xferNTFetch                 // software non-temporal prefetch fill
)

// Acquire reserves the bus for a transfer of size bytes belonging to
// ctx, ready to start no earlier than start. It returns when the last
// byte has crossed the bus. The caller decides how much of that time
// is demand latency versus pipelined occupancy.
func (b *Bus) Acquire(ctx int, start uint64, addr Addr, size int, kind xferKind) (done uint64) {
	begin := max64(start, b.busyUntil)

	row := addr / uint64(b.cfg.RowBytes)
	rowHit := b.hasRow && row == b.lastRow
	b.lastRow, b.hasRow = row, true

	rate := b.cfg.BusBytesPerCycle * b.cfg.BusEff
	if kind == xferNTFetch {
		// Software prefetchnta streams bypass the hardware prefetcher's
		// deep pipelining; the paper measured them below plain
		// hardware-prefetched sequential loads.
		rate *= b.cfg.NTSeqLoadFactor
	}
	occ := uint64(float64(size)/rate + 0.5)
	if occ == 0 {
		occ = 1
	}
	if !rowHit {
		occ += b.cfg.RowMissOverhead
		b.Stats.RowMisses++
	} else {
		b.Stats.RowHits++
	}
	if kind == xferWCPart {
		occ += b.cfg.WCPartialPenalty
	}

	// Destructive interference when both contexts stream memory at
	// once: the paper measured overlapping two bulk memory operations
	// as ~6% slower than running them back to back (Fig. 6b).
	other := 1 - ctx
	if ctx >= 0 && ctx < 2 {
		if b.lastUse[other] != 0 && begin-b.lastUse[other] < b.cfg.MemMemWindow && b.lastUse[other] <= begin {
			occ = uint64(float64(occ)*b.cfg.MemMemPenalty + 0.5)
		}
		b.lastUse[ctx] = begin + occ
	}

	b.busyUntil = begin + occ
	b.Stats.Transfers++
	b.Stats.Bytes += uint64(size)
	b.Stats.BusyCycles += occ
	if b.bw != nil && ctx >= 0 && ctx < 2 {
		b.bw[ctx].Bytes[LevelMem] += uint64(size)
		b.bw[ctx].Cycles[LevelMem] += occ
	}
	return b.busyUntil
}

// BusyUntil returns the time at which the bus frees up.
func (b *Bus) BusyUntil() uint64 { return b.busyUntil }

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
