package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestCache(t *testing.T) *Cache {
	t.Helper()
	return NewCache("t", 8*1024, 4, 64, 1) // 32 sets, 4 ways
}

func TestCacheGeometry(t *testing.T) {
	c := newTestCache(t)
	if c.Sets() != 32 || c.Ways() != 4 || c.LineSize() != 64 {
		t.Fatalf("geometry: sets=%d ways=%d line=%d", c.Sets(), c.Ways(), c.LineSize())
	}
	if c.SizeBytes() != 8*1024 {
		t.Fatalf("size=%d", c.SizeBytes())
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	for _, tc := range []struct{ total, ways, line, nt int }{
		{0, 4, 64, 0},
		{8192, 0, 64, 0},
		{8192, 4, 0, 0},
		{8192, 4, 64, 5},    // ntWays > ways
		{8192, 4, 64, -1},   // negative ntWays
		{8190, 4, 64, 0},    // not a multiple
		{96 * 64, 4, 64, 0}, // 24 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%v) did not panic", tc)
				}
			}()
			NewCache("bad", tc.total, tc.ways, tc.line, tc.nt)
		}()
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := newTestCache(t)
	if c.Lookup(0x1000, false) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(0x1000, false, HintNone)
	if !c.Lookup(0x1000, false) {
		t.Fatal("miss after fill")
	}
	if !c.Lookup(0x1030, false) {
		t.Fatal("miss within same line")
	}
	if c.Lookup(0x1040, false) {
		t.Fatal("hit in adjacent line")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newTestCache(t)
	// Five lines mapping to the same set (stride = sets*line = 2048).
	lines := make([]Addr, 5)
	for i := range lines {
		lines[i] = uint64(i) * 2048
	}
	for _, a := range lines[:4] {
		c.Fill(a, false, HintNone)
	}
	// Touch line 0 so line 1 becomes LRU.
	c.Lookup(lines[0], false)
	ev := c.Fill(lines[4], false, HintNone)
	if !ev.Valid || ev.Line != lines[1] {
		t.Fatalf("evicted %+v, want line %#x", ev, lines[1])
	}
	if !c.Contains(lines[0]) || c.Contains(lines[1]) {
		t.Fatal("LRU order violated")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := newTestCache(t)
	c.Fill(0, true, HintNone) // dirty
	for i := 1; i <= 4; i++ {
		ev := c.Fill(uint64(i)*2048, false, HintNone)
		if i == 4 {
			if !ev.Valid || !ev.Dirty || ev.Line != 0 {
				t.Fatalf("want dirty eviction of line 0, got %+v", ev)
			}
		} else if ev.Valid {
			t.Fatalf("unexpected eviction %+v at fill %d", ev, i)
		}
	}
	if c.Stats.DirtyEvict != 1 {
		t.Fatalf("DirtyEvict=%d", c.Stats.DirtyEvict)
	}
}

func TestCacheWriteMarksDirty(t *testing.T) {
	c := newTestCache(t)
	c.Fill(0, false, HintNone)
	c.Lookup(0, true) // store hit dirties the line
	for i := 1; i <= 4; i++ {
		if ev := c.Fill(uint64(i)*2048, false, HintNone); ev.Valid && ev.Line == 0 && !ev.Dirty {
			t.Fatal("store hit did not dirty the line")
		}
	}
}

// Non-temporal fills must never displace temporal lines: that is the
// SRF-pinning mechanism of §III-A.
func TestCacheNTFillsNeverEvictTemporal(t *testing.T) {
	c := newTestCache(t) // 4 ways, 1 NT way
	// Fill the set with temporal lines (the pinned SRF).
	for i := 0; i < 4; i++ {
		c.Fill(uint64(i)*2048, false, HintNone)
	}
	// Stream 100 NT lines through the same set.
	for i := 4; i < 104; i++ {
		ev := c.Fill(uint64(i)*2048, false, HintNonTemporal)
		if ev.Valid && ev.Line == 0*2048 && i > 4 {
			// The very first NT fill may displace the temporal line in
			// way 0; after that, NT traffic must only recycle NT lines.
			t.Fatalf("NT fill %d displaced temporal line", i)
		}
	}
	// At least ways 1..3 must still hold the original SRF lines.
	for i := 1; i < 4; i++ {
		if !c.Contains(uint64(i) * 2048) {
			t.Fatalf("temporal (SRF) line %d was displaced by NT traffic", i)
		}
	}
}

func TestCacheTemporalFillPrefersNTVictim(t *testing.T) {
	c := newTestCache(t)
	// Fill every way with temporal lines, stream one NT line through
	// (it recycles way 0), then fill temporally again: the NT line must
	// be the victim even though it is the most recently inserted.
	for i := 0; i < 4; i++ {
		c.Fill(uint64(i)*2048, false, HintNone)
	}
	c.Fill(4*2048, false, HintNonTemporal)
	ev := c.Fill(5*2048, false, HintNone)
	if !ev.Valid || ev.Line != 4*2048 {
		t.Fatalf("temporal fill should evict the NT line first, evicted %+v", ev)
	}
}

func TestCacheFillExistingRefreshes(t *testing.T) {
	c := newTestCache(t)
	c.Fill(0, false, HintNone)
	ev := c.Fill(0, true, HintNone)
	if ev.Valid {
		t.Fatalf("re-fill evicted %+v", ev)
	}
	// The re-fill with write=true must dirty it.
	c.Fill(1*2048, false, HintNone)
	c.Fill(2*2048, false, HintNone)
	c.Fill(3*2048, false, HintNone)
	ev = c.Fill(4*2048, false, HintNone)
	if !ev.Valid || ev.Line != 0 || !ev.Dirty {
		t.Fatalf("want dirty eviction of line 0, got %+v", ev)
	}
}

func TestCacheResidentBytes(t *testing.T) {
	c := newTestCache(t)
	for a := uint64(0); a < 512; a += 64 {
		c.Fill(a, false, HintNone)
	}
	if got := c.ResidentBytes(0, 512); got != 512 {
		t.Fatalf("ResidentBytes=%d want 512", got)
	}
	if got := c.ResidentBytes(0, 1024); got != 512 {
		t.Fatalf("ResidentBytes=%d want 512", got)
	}
}

func TestCacheFlush(t *testing.T) {
	c := newTestCache(t)
	c.Fill(0, true, HintNone)
	c.Fill(64, false, HintNone)
	if d := c.Flush(); d != 1 {
		t.Fatalf("Flush dropped %d dirty lines, want 1", d)
	}
	if c.Contains(0) || c.Contains(64) {
		t.Fatal("lines survive flush")
	}
}

// Property: the cache never holds two copies of one line, and never
// exceeds its associativity per set.
func TestCacheNoDuplicateLinesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache("q", 4*1024, 4, 64, 1)
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(64)) * 64 * 7 % (1 << 20)
			hint := HintNone
			if rng.Intn(3) == 0 {
				hint = HintNonTemporal
			}
			if rng.Intn(2) == 0 {
				c.Lookup(addr, rng.Intn(2) == 0)
			} else {
				c.Fill(addr, rng.Intn(2) == 0, hint)
			}
			// Check invariant: each (set, tag) appears at most once.
			for s := range c.sets {
				seen := map[uint64]bool{}
				for _, ln := range c.sets[s] {
					if !ln.valid {
						continue
					}
					if seen[ln.tag] {
						return false
					}
					seen[ln.tag] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a line just filled is resident; Lookup immediately after
// Fill must hit for any address within the line.
func TestCacheFillThenLookupProperty(t *testing.T) {
	f := func(raw uint64, off uint8, write bool) bool {
		c := NewCache("q", 4*1024, 4, 64, 1)
		addr := raw % (1 << 30)
		c.Fill(addr, write, HintNone)
		probe := c.LineAddr(addr) + uint64(off)%64
		return c.Lookup(probe, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCacheStatsCount(t *testing.T) {
	c := newTestCache(t)
	c.Lookup(0, false) // miss
	c.Fill(0, false, HintNone)
	c.Lookup(0, false) // hit
	c.Lookup(0, false) // hit
	if c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}
