package sim

import (
	"fmt"

	"streamgpp/internal/obs"
)

// CPU is a thread's handle onto its hardware context. All methods must
// be called only from the thread function the handle was passed to.
//
// Each operation declares the context's activity state (compute,
// memory, spin, sleep) on entry and leaves it set; the sibling context
// samples that state to resolve SMT resource interference. Gaps between
// consecutive operations are attributed to the previous activity, which
// is accurate to within the engine's sampling quantum.
type CPU struct {
	m *Machine
	p *proc
}

// ID returns the hardware context number (0 or 1).
func (c *CPU) ID() int { return c.p.id }

// Now returns the context's local virtual clock, in cycles.
func (c *CPU) Now() uint64 { return c.p.now }

// Machine returns the machine this context belongs to.
func (c *CPU) Machine() *Machine { return c.m }

// park hands control back to the engine so the other context can catch
// up in virtual time. No-op whenever the engine would immediately
// resume this same context — single-thread mode, a sibling that cannot
// run right now (done or asleep), or a sibling that is runnable but not
// next by the engine's rule (smallest clock, ties to the smaller id) —
// because in those cases the channel round-trip changes nothing. A
// sleeping context must always yield, because only the engine can block
// it until its event is signalled.
func (c *CPU) park() {
	if c.m.nlive < 2 {
		return
	}
	if !c.p.sleeping {
		sib := c.m.sibling(c.p.id)
		if sib == nil || sib.state == StateDone || sib.sleeping {
			return
		}
		if c.p.now < sib.now || (c.p.now == sib.now && c.p.id < sib.id) {
			return
		}
	}
	c.p.yield <- struct{}{}
	<-c.p.resume
}

// computeRate returns the context's effective compute rate given what
// the sibling is doing right now — the SMT issue-sharing model behind
// Figs. 6 and 8.
func (c *CPU) computeRate() float64 {
	sib := c.m.sibling(c.p.id)
	if sib == nil {
		return 1
	}
	switch sib.state {
	case StateCompute:
		return c.m.cfg.SMTComputeFactor
	case StateMemory:
		return c.m.cfg.SMTComputeMemFactor
	case StateSpin:
		return c.m.cfg.PausePenalty
	default: // idle, sleeping, done: effectively single-thread mode
		return 1
	}
}

// Compute executes ops abstract compute operations (one op ≈ one
// issue-slot-cycle when running alone). Progress is sampled every
// Quantum cycles so sibling interference tracks state changes.
func (c *CPU) Compute(ops int64) {
	if ops <= 0 {
		return
	}
	c.p.state = StateCompute
	work := float64(ops) * c.m.cfg.CPI // solo cycles of work remaining
	q := float64(c.m.cfg.Quantum)
	for work > 0 {
		chunk := work
		if chunk > q {
			chunk = q
		}
		rate := c.computeRate()
		dt := uint64(chunk/rate + 0.5)
		if dt == 0 {
			dt = 1
		}
		c.p.now += dt
		c.p.computeCycles += dt
		work -= chunk
		c.park()
	}
}

// Read performs one blocking load. The context stalls until the data
// arrives (a dependent scalar access, not a pipelined bulk one — use
// NewPipe for those).
func (c *CPU) Read(addr Addr, size int, hint Hint) AccessResult {
	return c.access(addr, size, false, hint)
}

// Write performs one blocking store (posted immediately for
// non-temporal stores).
func (c *CPU) Write(addr Addr, size int, hint Hint) AccessResult {
	return c.access(addr, size, true, hint)
}

func (c *CPU) access(addr Addr, size int, write bool, hint Hint) AccessResult {
	c.p.state = StateMemory
	r := c.m.Mem.Access(c.p.id, c.p.now, addr, size, write, hint)
	if r.Done > c.p.now {
		c.p.memCycles += r.Done - c.p.now
		c.p.now = r.Done
	}
	c.faultSpike()
	c.park()
	return r
}

// DrainWC flushes this context's write-combining buffer and waits for
// the bus (the sfence closing a non-temporal scatter).
func (c *CPU) DrainWC() {
	c.p.state = StateMemory
	done := c.m.Mem.DrainWC(c.p.id, c.p.now)
	if done > c.p.now {
		c.p.memCycles += done - c.p.now
		c.p.now = done
	}
	c.park()
}

// StallUntil advances the clock to t if it is in the future, charging
// the wait as memory-stall time (a pipeline waiting on a load).
func (c *CPU) StallUntil(t uint64) {
	if t > c.p.now {
		c.p.memCycles += t - c.p.now
		c.p.now = t
		c.park()
	}
}

// Idle advances the local clock without using any resources.
func (c *CPU) Idle(cycles uint64) {
	c.p.state = StateIdle
	c.p.now += cycles
	c.park()
}

// Pipe models a window of outstanding memory accesses: issue proceeds
// while up to MLP accesses are in flight, so independent misses overlap
// (hardware memory-level parallelism for the regular-code baseline,
// software prefetch distance for bulk stream gathers).
type Pipe struct {
	c       *CPU
	mlp     int
	window  []uint64 // completion-time ring buffer, fixed at mlp slots
	whead   int      // index of the oldest entry
	wlen    int      // occupied slots
	issue   uint64   // per-access issue cost, cycles
	pending int      // accesses since last park
	state   ProcState
	slowest uint64

	ps *pinSet // the context's persistent fast-path pins, see bulk.go

	// declared is set by the pattern-declaring entry points (AccessBulk,
	// AccessLoop): only their traffic probes and captures pins. Opaque
	// per-access traffic can hit pins at best as often as the reference
	// hierarchy walk hits its own memos, so probing it is a net tax —
	// measured on the indexed benchmarks, the probe + capture overhead
	// exceeds the walk savings. Like every fast-path policy this only
	// selects which path executes, never what an access does.
	declared bool

	// tlMLP, when non-nil, receives windowed samples of the window
	// occupancy (outstanding misses — achieved MLP). It is resolved at
	// NewPipe for bulk memory pipes only, and sampled exclusively at
	// points both fast-path modes reach identically (DRAM misses and
	// Drain), so an attached timeline preserves fast-on/off
	// byte-identity of the sampled series.
	tlMLP *obs.Series
}

// pipeParkBatch bounds how many accesses a Pipe performs between engine
// yields, trading a little cross-context timing skew for speed.
const pipeParkBatch = 8

// NewPipe returns a pipeline window with the given MLP (≥1) and a
// per-access issue cost in cycles. state tells the interference model
// whether this traffic belongs to a bulk memory task (StateMemory) or
// to ordinary interleaved code (StateCompute for the regular baseline's
// mixed loops, which occupy issue slots too).
func (c *CPU) NewPipe(mlp int, issueCycles uint64, state ProcState) *Pipe {
	if mlp < 1 {
		panic(fmt.Sprintf("sim: pipe MLP %d", mlp))
	}
	p := &Pipe{c: c, mlp: mlp, window: make([]uint64, mlp), issue: issueCycles, state: state,
		ps: &c.m.pinsets[c.p.id]}
	if state == StateMemory && c.m.tl != nil {
		// Only bulk memory traffic feeds the outstanding-miss series:
		// the regular baseline's interleaved pipes (StateCompute) run on
		// their own machine with an unrelated virtual clock.
		p.tlMLP = c.m.tl.Series("mlp outstanding")
	}
	return p
}

// Declare opts the pipe's per-access traffic into fast-path probing
// before any batch declaration (AccessBulk and AccessLoop set it
// implicitly on first use). Only callers who know their per-element
// traffic reuses lines should consider it: measured on this machine, a
// pin-served single access is merely break-even against the reference
// walk (whose TLB memo and L1 last-hit stash already make hits cheap),
// so universal early declaration taxes patternless traffic for no
// downstream gain — svm's indexed ops deliberately leave declaration
// to their first coalesced run instead. Like the flag itself, this is
// pure policy: it selects which path executes, never what an access
// does.
func (p *Pipe) Declare() { p.declared = true }

// Access issues one access through the window. The context clock tracks
// the issue front; call Drain to synchronise with completions. Only
// accesses that miss to DRAM occupy window slots (the window models
// MSHRs — outstanding misses); cache hits and posted writes cost their
// issue slot but never block the window.
func (p *Pipe) Access(addr Addr, size int, write bool, hint Hint) AccessResult {
	c := p.c
	if c.m.fastPath && p.declared {
		line := addr &^ (Addr(c.m.Mem.cfg.L1Line) - 1)
		s := pinSlot(line)
		// A set at pinColdLimit-1 is (or was recently) on probation:
		// only the line whose capture granted it gets the probe — any
		// other line in a near-cold set is a near-guaranteed miss.
		if cold := p.ps.cold[s]; cold < pinColdLimit-1 ||
			(cold == pinColdLimit-1 && p.ps.probeLine[s] == line) {
			if r, ok := p.fastAccess(addr, size, write, hint); ok {
				return r
			}
		} else {
			c.m.Cov[c.p.id].Bails[BailPinCold]++
		}
	}
	c.m.Cov[c.p.id].SlowAccesses++
	c.p.state = p.state

	start := c.p.now
	if p.wlen == p.mlp {
		oldest := p.window[p.whead]
		p.whead++
		if p.whead == p.mlp {
			p.whead = 0
		}
		p.wlen--
		if oldest > start {
			start = oldest
		}
	}
	r := c.m.Mem.Access(c.p.id, start, addr, size, write, hint)
	if r.Level == LevelPF || r.Level == LevelMem {
		i := p.whead + p.wlen
		if i >= p.mlp {
			i -= p.mlp
		}
		p.window[i] = r.Done
		p.wlen++
		// A miss never takes the pinned fast path, so this sample point
		// is reached identically with the fast path on and off.
		p.tlMLP.Sample(start, float64(p.wlen))
	}
	if r.Done > p.slowest {
		p.slowest = r.Done
	}

	// The clock advances to the issue point, not the completion.
	t := start + p.issue
	if t > c.p.now {
		c.p.memCycles += t - c.p.now
		c.p.now = t
	}
	p.pending++
	if p.pending >= pipeParkBatch {
		p.pending = 0
		c.park()
	}
	if c.m.fastPath && p.declared {
		p.capturePin(addr, size, r.Level)
	}
	return r
}

// Drain waits for every outstanding access to complete and empties the
// window.
func (p *Pipe) Drain() {
	c := p.c
	c.p.state = p.state
	if p.slowest > c.p.now {
		c.p.memCycles += p.slowest - c.p.now
		c.p.now = p.slowest
	}
	p.tlMLP.Sample(c.p.now, float64(p.wlen))
	p.whead = 0
	p.wlen = 0
	p.slowest = 0
	p.pending = 0
	c.faultSpike()
	c.park()
}

// Outstanding returns the number of in-flight accesses.
func (p *Pipe) Outstanding() int { return p.wlen }

// Signal publishes e: any context sleeping on e wakes after its
// policy's dispatch latency; spinning contexts notice on their next
// poll. Costs one store.
func (c *CPU) Signal(e *Event) {
	c.p.now++ // the store itself
	c.m.signal(e, c.p.now)
	c.park()
}

// Wait blocks until cond() is true, using the given wait policy while
// idle. cond is evaluated over engine-serialised shared state, so it
// needs no locking; e must be Signalled by whichever thread makes cond
// true. Returns the number of cycles spent waiting.
func (c *CPU) Wait(e *Event, policy WaitPolicy, cond func() bool) uint64 {
	w, _ := c.WaitBudget(e, policy, 0, cond)
	return w
}

// WaitBudget is Wait with a cycle budget: if cond() is still false
// after budget cycles of waiting, it returns with timedOut true
// instead of waiting forever. A budget of 0 means no deadline (plain
// Wait). Sleeping policies register the deadline with the engine, so a
// lost wakeup signal cannot wedge the run: the engine wakes the
// sleeper at its deadline and the condition is re-checked — if the
// lost signal's state change is visible, the wait completes normally.
// Executors use the budget as a progress watchdog.
func (c *CPU) WaitBudget(e *Event, policy WaitPolicy, budget uint64, cond func() bool) (waited uint64, timedOut bool) {
	start := c.p.now
	if cond() {
		c.p.now += 2 // the check
		return c.p.now - start, false
	}
	deadline := uint64(0)
	if budget > 0 {
		deadline = start + budget
	}
	if c.m.nlive < 2 {
		if deadline == 0 {
			panic("sim: Wait with a false condition in single-thread mode would never complete")
		}
		// Nothing else can make cond true; burn the budget idle and
		// report the timeout.
		c.p.state = StateIdle
		c.p.sleepCycles += deadline - c.p.now
		c.p.now = deadline
		return c.p.now - start, true
	}
	switch policy {
	case PolicyPause:
		c.p.state = StateSpin
		for !cond() {
			if deadline != 0 && c.p.now >= deadline {
				c.p.state = StateIdle
				return c.p.now - start, true
			}
			c.p.now += c.m.cfg.PauseLoopCycles
			c.p.spinCycles += c.m.cfg.PauseLoopCycles
			c.park()
		}
		// Leaving the spin loop costs a pipeline flush; together with
		// the poll interval this reproduces the measured ~175-cycle
		// dispatch.
		exit := c.m.cfg.PauseDispatchLat - c.m.cfg.PauseLoopCycles
		c.p.now += exit
		c.p.spinCycles += exit
		c.p.state = StateIdle
	case PolicyMwait, PolicyOS:
		lat := c.m.cfg.MwaitDispatchLat
		if policy == PolicyOS {
			lat = c.m.cfg.OSDispatchLat
		}
		for !cond() {
			if deadline != 0 && c.p.now >= deadline {
				c.p.state = StateIdle
				return c.p.now - start, true
			}
			if policy == PolicyMwait {
				c.p.now += c.m.cfg.MonitorSetupLat // arm MONITOR
				if cond() {
					break // raced: the write landed while arming
				}
			}
			c.p.state = StateSleep
			c.p.sleeping = true
			c.p.waitEvent = e
			c.p.wakeLat = lat
			c.p.deadline = deadline
			c.park() // the engine resumes us after a Signal or deadline
			c.p.state = StateIdle
			if c.p.timedOut {
				// Woken by the engine at the deadline, not by a
				// signal. If the state change is visible anyway (the
				// signal was lost after the update) the wait has
				// succeeded; otherwise report the timeout.
				c.p.timedOut = false
				if !cond() {
					return c.p.now - start, true
				}
				break
			}
		}
	default:
		panic(fmt.Sprintf("sim: unknown wait policy %d", policy))
	}
	return c.p.now - start, false
}
