package sim

import "streamgpp/internal/obs"

// defaultTimeline, when set, is attached to every subsequently created
// Machine, mirroring SetDefaultObserver: the CLIs enable timeline
// sampling once and every machine an app builds feeds the same
// timeline. Only stream-side activity samples (bulk memory pipes and
// the stream executors), so a regular-baseline machine built alongside
// contributes nothing and the series stay monotone in the stream
// machine's virtual time.
var defaultTimeline *obs.Timeline

// SetDefaultTimeline installs a timeline onto every Machine created
// after this call. Set it from one goroutine before machines are built;
// pass nil to disable (the zero-cost default).
func SetDefaultTimeline(tl *obs.Timeline) { defaultTimeline = tl }

// SetTimeline attaches a timeline to this machine only.
func (m *Machine) SetTimeline(tl *obs.Timeline) { m.tl = tl }

// Timeline returns the machine's timeline, or nil.
func (m *Machine) Timeline() *obs.Timeline { return m.tl }
