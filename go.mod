module streamgpp

go 1.22
