// Benchmarks regenerating every figure of the paper's evaluation.
// Each benchmark runs one figure's experiment end to end on the
// simulated Pentium 4 and reports the headline simulated-cycle numbers
// as custom metrics, so `go test -bench=. -benchmem` reproduces the
// whole evaluation section. Wall-clock ns/op measures the simulator,
// not the modelled machine; the sim-* metrics are the paper's numbers.
package streamgpp_test

import (
	"io"
	"os"
	"testing"

	"streamgpp/internal/apps/cdp"
	"streamgpp/internal/apps/fem"
	"streamgpp/internal/apps/micro"
	"streamgpp/internal/apps/neo"
	"streamgpp/internal/apps/spas"
	"streamgpp/internal/bench"
	"streamgpp/internal/cluster"
	"streamgpp/internal/compiler"
	"streamgpp/internal/exec"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

// reportCoverage re-runs the workload once, untimed, with a metrics
// registry attached, and reports the stream run's fast-path coverage %
// (what fraction of bulk accesses the simulator's fast path served).
// The timed iterations run observer-free so the instrumentation cannot
// distort ns/op; the extra run is deterministic, so its coverage is
// exactly the timed runs' coverage.
func reportCoverage(b *testing.B, fn func() error) {
	b.Helper()
	b.StopTimer()
	defer b.StartTimer()
	reg := obs.NewRegistry()
	sim.SetDefaultObserver(reg)
	defer sim.SetDefaultObserver(nil)
	if err := fn(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(reg.Gauge("coverage.fastpath_pct").Value(), "fastpath-cov-pct")
	reportRuntime(b)
}

// reportRuntime samples the Go runtime after the timed iterations and
// reports the simulator process's memory footprint and GC behaviour:
// live heap bytes and the p99 GC stop-the-world pause. bench.sh folds
// both into BENCH_history.jsonl, so heap growth or GC regressions in
// the simulator show up in the same ledger as wall-clock regressions.
func reportRuntime(b *testing.B) {
	b.Helper()
	reg := obs.NewRegistry()
	rc := obs.NewRuntimeCollector(reg)
	rc.Collect()
	b.ReportMetric(reg.Gauge("go.heap.inuse_bytes").Value(), "heap-inuse-bytes")
	b.ReportMetric(reg.Histogram("go.gc.pause_us").Quantile(0.99)*1e3, "gc-pause-p99-ns")
}

// TestMain lets the wall-clock benchmarks measure the simulator with
// its bulk fast path disabled (STREAMGPP_FASTPATH=off), so before/after
// comparisons run the same binary on the same machine.
func TestMain(m *testing.M) {
	if os.Getenv("STREAMGPP_FASTPATH") == "off" {
		sim.SetDefaultFastPath(false)
	}
	os.Exit(m.Run())
}

// BenchmarkFig5Bandwidth sweeps the Fig. 5 gather/scatter bandwidth
// characterisation (all four panels, plain and non-temporal).
func BenchmarkFig5Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig5(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bench.BandwidthProbe{RecordBytes: 4, TotalBytes: 8 << 20}.Run(), "seq-load-GB/s")
	b.ReportMetric(bench.BandwidthProbe{RecordBytes: 128, Random: true, TotalBytes: 8 << 20}.Run(), "rand-gather-GB/s")
	reportRuntime(b)
}

// BenchmarkFig6Overlap runs the computation/memory SMT overlap
// experiment.
func BenchmarkFig6Overlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig6(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8BusyWait runs the PAUSE vs MONITOR/MWAIT comparison.
func BenchmarkFig8BusyWait(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig8(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMicro runs one micro-benchmark configuration per iteration and
// reports its stream/regular speedup.
func benchMicro(b *testing.B, run func(micro.Params, exec.Config) (micro.Result, error), comp int) {
	b.Helper()
	var last micro.Result
	for i := 0; i < b.N; i++ {
		r, err := run(micro.Params{N: 100000, Comp: comp, Seed: 9}, exec.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Speedup, "speedup")
	b.ReportMetric(float64(last.Stream.Cycles), "sim-cycles")
	reportCoverage(b, func() error {
		_, err := run(micro.Params{N: 100000, Comp: comp, Seed: 9}, exec.Defaults())
		return err
	})
}

// BenchmarkFig9* sweep the three micro-benchmarks at the knee points of
// the COMP curves.
func BenchmarkFig9LDSTCompLow(b *testing.B)  { benchMicro(b, micro.RunLDST, 1) }
func BenchmarkFig9LDSTCompHigh(b *testing.B) { benchMicro(b, micro.RunLDST, 16) }
func BenchmarkFig9GATSCATLow(b *testing.B)   { benchMicro(b, micro.RunGATSCAT, 1) }
func BenchmarkFig9GATSCATMid(b *testing.B)   { benchMicro(b, micro.RunGATSCAT, 4) }
func BenchmarkFig9PRODCONLow(b *testing.B)   { benchMicro(b, micro.RunPRODCON, 1) }
func BenchmarkFig9PRODCONMid(b *testing.B)   { benchMicro(b, micro.RunPRODCON, 4) }

// BenchmarkFig11aFEM* run the four streamFEM configurations.
func benchFEM(b *testing.B, p fem.Params) {
	b.Helper()
	p.Steps = 1
	var last fem.Result
	for i := 0; i < b.N; i++ {
		r, err := fem.Run(p, exec.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Speedup, "speedup")
	b.ReportMetric(float64(last.Stream.Cycles), "sim-cycles")
	reportCoverage(b, func() error {
		_, err := fem.Run(p, exec.Defaults())
		return err
	})
}

func BenchmarkFig11aFEMEulerLin(b *testing.B)  { benchFEM(b, fem.EulerLin) }
func BenchmarkFig11aFEMEulerQuad(b *testing.B) { benchFEM(b, fem.EulerQuad) }
func BenchmarkFig11aFEMMHDLin(b *testing.B)    { benchFEM(b, fem.MHDLin) }
func BenchmarkFig11aFEMMHDQuad(b *testing.B)   { benchFEM(b, fem.MHDQuad) }

// BenchmarkFig11bCDP* run the four streamCDP configurations.
func benchCDP(b *testing.B, p cdp.Params) {
	b.Helper()
	p.Steps = 1
	var last cdp.Result
	for i := 0; i < b.N; i++ {
		r, err := cdp.Run(p, exec.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Speedup, "speedup")
	b.ReportMetric(float64(last.Stream.Cycles), "sim-cycles")
	reportCoverage(b, func() error {
		_, err := cdp.Run(p, exec.Defaults())
		return err
	})
}

func BenchmarkFig11bCDP4n4096(b *testing.B) { benchCDP(b, cdp.Grid4n4096) }
func BenchmarkFig11bCDP4n8192(b *testing.B) { benchCDP(b, cdp.Grid4n8192) }
func BenchmarkFig11bCDP6n4096(b *testing.B) { benchCDP(b, cdp.Grid6n4096) }
func BenchmarkFig11bCDP6n8192(b *testing.B) { benchCDP(b, cdp.Grid6n8192) }

// BenchmarkFig11cNeo runs the neo-hookean constitutive update.
func BenchmarkFig11cNeo(b *testing.B) {
	var last neo.Result
	for i := 0; i < b.N; i++ {
		r, err := neo.Run(neo.Params{Elements: 32768, Seed: 11}, exec.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Speedup, "speedup")
	b.ReportMetric(float64(last.SavedBytes), "saved-bytes")
	b.ReportMetric(float64(last.Stream.Cycles), "sim-cycles")
	reportCoverage(b, func() error {
		_, err := neo.Run(neo.Params{Elements: 32768, Seed: 11}, exec.Defaults())
		return err
	})
}

// BenchmarkFig11dSPAS* run the SpMV comparison at a cache-resident and
// a cache-exceeding size.
func benchSPAS(b *testing.B, rows int) {
	b.Helper()
	var last spas.Result
	for i := 0; i < b.N; i++ {
		r, err := spas.Run(spas.Params{Rows: rows, NNZPerRow: spas.PaperNNZPerRow, Seed: 13}, exec.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Speedup, "speedup")
	b.ReportMetric(float64(last.Stream.Cycles), "sim-cycles")
	reportCoverage(b, func() error {
		_, err := spas.Run(spas.Params{Rows: rows, NNZPerRow: spas.PaperNNZPerRow, Seed: 13}, exec.Defaults())
		return err
	})
}

func BenchmarkFig11dSPASSmall(b *testing.B) { benchSPAS(b, 2000) }
func BenchmarkFig11dSPASLarge(b *testing.B) { benchSPAS(b, 24000) }

// --- Ablation benches for the design choices DESIGN.md calls out ---

// benchFEMVariant runs streamFEM Euler-lin with mutated compiler and
// executor knobs, reporting simulated cycles for comparison against
// BenchmarkFig11aFEMEulerLin's default configuration.
func benchFEMVariant(b *testing.B, mut func(*compiler.Options, *exec.Config)) {
	b.Helper()
	p := fem.EulerLin
	p.Steps = 1
	var cycles uint64
	for i := 0; i < b.N; i++ {
		inst, err := fem.NewInstance(p)
		if err != nil {
			b.Fatal(err)
		}
		opt := compiler.DefaultOptions(svm.DefaultSRF(inst.M))
		e := exec.Defaults()
		mut(&opt, &e)
		res, err := inst.RunStreamWith(e, opt)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkAblationDefault is the reference point for the ablations.
func BenchmarkAblationDefault(b *testing.B) {
	benchFEMVariant(b, func(*compiler.Options, *exec.Config) {})
}

// BenchmarkAblationNoDoubleBuffer disables buffer renaming: gathers
// serialise behind the kernels reading the single buffer.
func BenchmarkAblationNoDoubleBuffer(b *testing.B) {
	benchFEMVariant(b, func(o *compiler.Options, _ *exec.Config) { o.DoubleBuffer = false })
}

// BenchmarkAblationNoFusion disables kernel fusion (per-kernel compute
// tasks and dispatches).
func BenchmarkAblationNoFusion(b *testing.B) {
	benchFEMVariant(b, func(o *compiler.Options, _ *exec.Config) { o.FuseKernels = false })
}

// BenchmarkAblationPauseWait switches the work-queue wait policy to
// PAUSE (fast dispatch, sibling interference — §III-B.2's trade-off).
func BenchmarkAblationPauseWait(b *testing.B) {
	benchFEMVariant(b, func(_ *compiler.Options, e *exec.Config) { e.WaitPolicy = sim.PolicyPause })
}

// BenchmarkAblationOSWait uses OS descheduling (tens of thousands of
// cycles per wakeup).
func BenchmarkAblationOSWait(b *testing.B) {
	benchFEMVariant(b, func(_ *compiler.Options, e *exec.Config) { e.WaitPolicy = sim.PolicyOS })
}

// BenchmarkAblationTemporalGathers turns off the non-temporal hints:
// gather/scatter traffic competes with the SRF for cache space.
func BenchmarkAblationTemporalGathers(b *testing.B) {
	benchFEMVariant(b, func(o *compiler.Options, _ *exec.Config) {
		ops := svm.DefaultOps()
		ops.Hint = sim.HintNone
		o.Ops = ops
	})
}

// BenchmarkAblationSingleContext runs the whole schedule on one
// hardware context (no thread-level overlap).
func BenchmarkAblationSingleContext(b *testing.B) {
	p := fem.EulerLin
	p.Steps = 1
	var cycles uint64
	for i := 0; i < b.N; i++ {
		inst, err := fem.NewInstance(p)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := compiler.Compile(inst.Graph(), compiler.DefaultOptions(svm.DefaultSRF(inst.M)))
		if err != nil {
			b.Fatal(err)
		}
		r, err := exec.RunStream1Ctx(inst.M, prog, exec.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// --- Future-machine experiments (§V-A / §VI) ---
//
// The paper closes by arguing that modest micro-architecture changes —
// more TLB mapping above all — would "substantially improve the
// performance of stream programs". sim.ImprovedStream encodes that
// hypothetical machine; these benchmarks measure the paper's claim.

// BenchmarkFutureMachineGATSCAT compares GAT-SCAT-COMP's stream version
// on the improved machine against the 2005 baseline.
func BenchmarkFutureMachineGATSCAT(b *testing.B) {
	improved := sim.ImprovedStream()
	var base, future micro.Result
	for i := 0; i < b.N; i++ {
		var err error
		base, err = micro.RunGATSCAT(micro.Params{N: 100000, Comp: 2, Seed: 9}, exec.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		future, err = micro.RunGATSCAT(micro.Params{N: 100000, Comp: 2, Seed: 9, Machine: &improved}, exec.Defaults())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(base.Stream.Cycles)/float64(future.Stream.Cycles), "stream-gain")
	b.ReportMetric(base.Speedup, "speedup-2005")
	b.ReportMetric(future.Speedup, "speedup-future")
}

// BenchmarkFutureMachineRandomGather measures the random-access
// bandwidth gain from the larger, faster TLB (the paper's specific
// bottleneck: "missing in the TLB is the dominant factor"). The gain
// appears on the demand-miss path; software-prefetched non-temporal
// streams already hide the walk behind bus occupancy in this model.
func BenchmarkFutureMachineRandomGather(b *testing.B) {
	var base, future float64
	for i := 0; i < b.N; i++ {
		p := bench.BandwidthProbe{RecordBytes: 128, Random: true, TotalBytes: 8 << 20}
		base = p.Run()
		future = p.RunOn(sim.ImprovedStream())
	}
	b.ReportMetric(base, "GB/s-2005")
	b.ReportMetric(future, "GB/s-future")
	b.ReportMetric(future/base, "gain")
}

// BenchmarkMultiNodeStencil runs the multi-node SVM extension (the
// paper's footnote-2 execution model): a distributed stencil on 1, 2
// and 4 nodes connected by an InfiniBand-class link, reporting strong
// scaling.
func BenchmarkMultiNodeStencil(b *testing.B) {
	var pts []cluster.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = cluster.StrongScaling(cluster.DefaultLink(), 4, func(nodes int) ([]cluster.Program, error) {
			st, err := cluster.NewStencil1D(65536, nodes, cluster.DefaultLink())
			if err != nil {
				return nil, err
			}
			return st.NodePrograms(), nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(pts) == 4 {
		b.ReportMetric(pts[1].Speedup, "speedup-2node")
		b.ReportMetric(pts[3].Speedup, "speedup-4node")
	}
}
