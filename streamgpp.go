// Package streamgpp reproduces "Stream Programming on General-Purpose
// Processors" (Gummaraju & Rosenblum, MICRO 2005): a complete system
// for writing programs in a streaming style — gather/operate/scatter
// over a Stream Virtual Machine — and mapping them efficiently onto a
// conventional CPU by pinning the Stream Register File in cache and
// scheduling bulk memory operations and computation kernels onto the
// two contexts of a simultaneous-multithreaded core through a
// distributed work queue.
//
// Because the paper's machine-specific levers (SMT thread pinning,
// non-temporal x86 instructions, MONITOR/MWAIT) are not reachable from
// portable Go, the machine itself is provided as a deterministic
// simulator calibrated to the paper's 3.4 GHz Pentium 4 testbed; both
// programming styles run on it and are compared exactly as in §IV.
//
// The essential flow:
//
//	m := streamgpp.NewMachine()                    // the simulated CPU
//	a := streamgpp.NewArray(m, "a", layout, n)     // data in global memory
//	g := streamgpp.NewGraph("prog")                // an SDF stream program
//	in := g.Input(stream, streamgpp.Bind(a))       // gather edges
//	out := g.AddKernel(kernel, ins, outs)          // computation kernels
//	g.Output(out[0], streamgpp.Bind(result))       // scatter edges
//	prog, _ := streamgpp.Compile(g, streamgpp.DefaultOptions(streamgpp.DefaultSRF(m)))
//	res := streamgpp.RunStream(m, prog, streamgpp.DefaultExec())
//
// Sub-packages under internal/ hold the implementation: sim (the
// machine), svm (streams, SRF, gather/scatter, kernels), sdf (graphs),
// compiler (strip-mining, double buffering, fusion, scheduling), wq
// (the distributed work queue), exec (the executors) and apps (the
// paper's micro-benchmarks and four scientific applications). This
// package is the stable facade re-exporting what a downstream user
// needs.
package streamgpp

import (
	"streamgpp/internal/advisor"
	"streamgpp/internal/compiler"
	"streamgpp/internal/exec"
	"streamgpp/internal/fault"
	"streamgpp/internal/obs"
	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

// Machine is the simulated two-context processor (see internal/sim).
type Machine = sim.Machine

// MachineConfig holds every machine parameter.
type MachineConfig = sim.Config

// CPU is a simulated thread's handle onto a hardware context.
type CPU = sim.CPU

// Hint is a cacheability hint (temporal or non-temporal).
type Hint = sim.Hint

// Cacheability hints.
const (
	HintNone        = sim.HintNone
	HintNonTemporal = sim.HintNonTemporal
)

// WaitPolicy selects how idle simulated threads wait (PAUSE spin,
// MONITOR/MWAIT, or OS descheduling).
type WaitPolicy = sim.WaitPolicy

// Wait policies from §III-B.2.
const (
	PolicyPause = sim.PolicyPause
	PolicyMwait = sim.PolicyMwait
	PolicyOS    = sim.PolicyOS
)

// PentiumD8300 returns the paper's testbed configuration: a 3.4 GHz
// Pentium 4 Prescott with a 1 MB 8-way L2 and a 6.4 GB/s front-side bus.
func PentiumD8300() MachineConfig { return sim.PentiumD8300() }

// NewMachine returns a machine with the paper's testbed configuration.
func NewMachine() *Machine { return sim.MustNew(sim.PentiumD8300()) }

// NewMachineWith returns a machine with a custom configuration.
func NewMachineWith(cfg MachineConfig) (*Machine, error) { return sim.New(cfg) }

// Field, RecordLayout, Array, IndexArray, Stream, SRF and Kernel are
// the Stream Virtual Machine building blocks (see internal/svm).
type (
	Field        = svm.Field
	RecordLayout = svm.RecordLayout
	Array        = svm.Array
	IndexArray   = svm.IndexArray
	Stream       = svm.Stream
	SRF          = svm.SRF
	Kernel       = svm.Kernel
)

// F is shorthand for a field specification: F("x", 8) is an 8-byte
// field named x.
func F(name string, size int) Field { return svm.F(name, size) }

// Layout builds a packed record layout from fields.
func Layout(name string, fields ...Field) RecordLayout { return svm.Layout(name, fields...) }

// NewArray allocates an array of n records in simulated global memory.
func NewArray(m *Machine, name string, layout RecordLayout, n int) *Array {
	return svm.NewArray(m, name, layout, n)
}

// NewIndexArray allocates an index array for indexed gathers/scatters.
func NewIndexArray(m *Machine, name string, n int) *IndexArray {
	return svm.NewIndexArray(m, name, n)
}

// NewStream creates a stream of n elements with the given packed fields.
func NewStream(name string, n int, fields ...Field) *Stream {
	return svm.NewStream(name, n, fields...)
}

// StreamOf creates a stream shaped to carry selected fields of a record
// layout (the result of a gather).
func StreamOf(name string, n int, src RecordLayout, selected []int) *Stream {
	return svm.StreamOf(name, n, src, selected)
}

// DefaultSRF allocates a Stream Register File sized to pin comfortably
// inside the machine's L2 cache.
func DefaultSRF(m *Machine) *SRF { return svm.DefaultSRF(m) }

// NewSRF allocates a Stream Register File of an explicit size.
func NewSRF(m *Machine, bytes uint64) (*SRF, error) { return svm.NewSRF(m, bytes) }

// Graph, Edge and Binding describe stream programs as Synchronous Data
// Flow graphs (see internal/sdf).
type (
	Graph   = sdf.Graph
	Edge    = sdf.Edge
	Binding = sdf.Binding
)

// NewGraph returns an empty SDF graph.
func NewGraph(name string) *Graph { return sdf.New(name) }

// Bind ties a stream edge to an array over the named fields (all
// fields when none are given); chain .Indexed, .MultiIndexed or
// .Accumulate for indexed and scatter-add access.
func Bind(a *Array, fields ...string) Binding { return sdf.Bind(a, fields...) }

// Program is a compiled stream program; CompileOptions tune the
// compiler (see internal/compiler).
type (
	Program        = compiler.Program
	CompileOptions = compiler.Options
)

// DefaultOptions returns the paper's compilation configuration: double
// buffering and kernel fusion on, non-temporal bulk memory operations.
func DefaultOptions(srf *SRF) CompileOptions { return compiler.DefaultOptions(srf) }

// Compile lowers a validated SDF graph to a software-pipelined task
// schedule: strip-mining, double buffering, fusion and dependence
// encoding, as in §IV-A.
func Compile(g *Graph, opt CompileOptions) (*Program, error) { return compiler.Compile(g, opt) }

// ExecConfig tunes the executors; Result reports one execution; Loop
// describes one regular-code loop nest (see internal/exec).
type (
	ExecConfig = exec.Config
	Result     = exec.Result
	Loop       = exec.Loop
)

// DefaultExec returns the evaluation's executor configuration
// (MONITOR/MWAIT waits, 64-slot work queue).
func DefaultExec() ExecConfig { return exec.Defaults() }

// RunStream executes a compiled program on both hardware contexts:
// control+compute on one, the memory thread on the other, communicating
// through the distributed work queue (§III-B). A non-nil error is
// always a *RunError carrying the failing task, strip, phase and
// cycle; without fault injection it can only report an executor bug.
func RunStream(m *Machine, p *Program, cfg ExecConfig) (Result, error) {
	return exec.RunStream2Ctx(m, p, cfg)
}

// RunStream1Ctx executes a compiled program software-pipelined on a
// single hardware context.
func RunStream1Ctx(m *Machine, p *Program, cfg ExecConfig) (Result, error) {
	return exec.RunStream1Ctx(m, p, cfg)
}

// RunRegular executes conventional interleaved loops — the baseline the
// paper compares against.
func RunRegular(m *Machine, cfg ExecConfig, loops ...Loop) Result {
	return exec.RunRegular(m, cfg, loops...)
}

// Speedup returns the paper's metric: regular cycles over stream cycles.
func Speedup(regular, stream Result) float64 { return exec.Speedup(regular, stream) }

// Trace records the task timeline of a stream execution (attach to
// ExecConfig.Trace); TraceEvent is one entry.
type (
	Trace      = exec.Trace
	TraceEvent = exec.TraceEvent
)

// TuneResult reports a strip-size search (see TuneStripSize).
type TuneResult = exec.TuneResult

// TuneStripSize empirically searches for the strip size minimising a
// program's execution time — the job the paper assigns to the stream
// scheduler. build must produce a fresh machine and program per
// candidate (0 = the compiler's automatic choice).
func TuneStripSize(candidates []int, ecfg ExecConfig,
	build func(stripElems int) (*Machine, *Program, error)) (TuneResult, error) {
	return exec.TuneStripSize(candidates, ecfg, build)
}

// HalvingCandidates returns the strip-size ladder auto/2, auto/4, ...
// down to min, for TuneStripSize.
func HalvingCandidates(auto, min int) []int { return exec.HalvingCandidates(auto, min) }

// MetricsRegistry is a registry of named counters, gauges and
// histograms the whole stack records into; MetricsSnapshot is its
// state frozen at one instant, with Delta for bracketing runs (see
// internal/obs).
type (
	MetricsRegistry = obs.Registry
	MetricsSnapshot = obs.Snapshot
)

// NewMetricsRegistry returns an empty metrics registry. Attach it to a
// machine with Machine.SetObserver — or install it with
// SetDefaultObserver before machines are built — and the simulator,
// the SVM bulk operations, the work queue and the executors all record
// into it.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// SetDefaultObserver installs a registry onto every Machine created
// after this call (nil turns it off) — for observing machines built
// deep inside application packages.
func SetDefaultObserver(r *MetricsRegistry) { sim.SetDefaultObserver(r) }

// MachineStats is every simulator counter block (caches, TLB, bus,
// prefetchers) frozen at one instant; obtain it from
// Machine.StatsSnapshot.
type MachineStats = sim.MachineStats

// StallReport attributes a run's cycles per hardware context: compute,
// bulk memory, dependency-wait (spin+mwait on the work queue), idle.
type StallReport = exec.StallReport

// NewStallReport builds the attribution for one execution.
func NewStallReport(res Result) StallReport { return exec.NewStallReport(res) }

// AdvisorReport is the §V-A streaming-suitability analysis of a graph.
type AdvisorReport = advisor.Report

// Advise statically analyses a stream program: traffic, arithmetic
// intensity, the paper's suitability checklist, and a cycle estimate —
// before anything runs.
func Advise(g *Graph, cfg MachineConfig) (*AdvisorReport, error) {
	return advisor.Analyze(g, cfg)
}

// --- Fault injection and recovery (robustness layer) ---

// FaultKind enumerates the injectable fault classes: latency spikes
// and dropped wakeups in the machine model, dropped dependence-clears
// and transient enqueue failures in the work queue, kernel faults and
// poisoned SRF strips in the executor.
type FaultKind = fault.Kind

// The injectable fault kinds.
const (
	FaultLatencySpike    = fault.LatencySpike
	FaultDroppedWakeup   = fault.DroppedWakeup
	FaultDroppedDepClear = fault.DroppedDepClear
	FaultEnqueueFull     = fault.EnqueueFull
	FaultKernelFault     = fault.KernelFault
	FaultPoisonedStrip   = fault.PoisonedStrip
)

// FaultConfig parameterises a fault injector: a seed, per-kind rates
// and caps, and the latency-spike magnitude.
type FaultConfig = fault.Config

// FaultInjector is the deterministic seeded fault source; a run under
// injection replays byte-identically from its seed.
type FaultInjector = fault.Injector

// NewFaultInjector returns an injector drawing from cfg.Seed.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return fault.New(cfg) }

// ParseFaultSpec parses a CLI fault specification ("kind:rate,..."
// with kinds as printed by FaultKind.String, or "all:rate").
func ParseFaultSpec(spec string) (FaultConfig, error) { return fault.ParseSpec(spec) }

// SetDefaultFaultInjector installs a fault injector onto every Machine
// created after this call (nil turns injection off). Machine-level
// hooks, the work queue and the executors all draw from it, and the
// executors respond with strip-level retry, dependence scrubbing, a
// progress watchdog and graceful degradation to the single-context
// schedule (see ExecConfig.RetryLimit, WatchdogCycles, DegradeTo1Ctx).
func SetDefaultFaultInjector(in *FaultInjector) { sim.SetDefaultFaultInjector(in) }

// RunError is the structured failure of a stream-program run,
// replacing the run path's former panics: it names the operation,
// task, phase, strip, context and cycle, plus a work-queue dependence
// diagnosis for scheduling failures.
type RunError = exec.RunError

// RecoverySummary accounts one run's fault-recovery activity; see
// Result.Recovery and StallReport.Recovery.
type RecoverySummary = exec.RecoverySummary
