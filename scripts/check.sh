#!/bin/sh
# Repo health check: vet, build, full tests, and the race detector over
# the packages whose instrumentation relies on the sim engine's
# virtual-time serialisation (wq, exec, obs).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (wq, exec, obs) =="
go test -race ./internal/wq/ ./internal/exec/ ./internal/obs/

echo "OK"
