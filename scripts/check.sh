#!/bin/sh
# Repo health check: vet, build, full tests, the race detector over
# the packages whose instrumentation relies on the sim engine's
# virtual-time serialisation (wq, exec, obs, svm) plus the parallel
# experiment runner, and a smoke run of the wall-clock benchmark
# harness.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (wq, exec, obs, svm) =="
go test -race ./internal/wq/ ./internal/exec/ ./internal/obs/ ./internal/svm/

echo "== go test -race (parallel experiment runner) =="
go test -race -run 'TestFastPathAndParallelRunsAreByteIdentical' ./internal/bench/

echo "== scripts/bench.sh smoke =="
sh scripts/bench.sh smoke

echo "OK"
