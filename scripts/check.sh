#!/bin/sh
# Repo health check: vet, build, full tests, the race detector over
# the instrumented packages (wq, exec, obs, svm) plus the parallel
# experiment runner, the fault matrix, a smoke of the run-ledger schema
# and the regression gate (a clean re-run must pass, a synthetically
# slowed run must fail), a smoke of the critical-path profiler and the
# what-if cross-check (identity exact, kernel speedup within the gate
# tolerance), a smoke of the fast-path coverage profiler (known bail
# reason named, nonzero DRAM attribution), the streamd job-service
# lifecycle selftest (cache hit byte-identity, mid-run SSE progress,
# /metricz scrape, the /sloz report, a live /debug/pprof goroutine
# profile, the post-drain goroutine-leak gate, SIGTERM drain, valid
# ledger and event log, the streamtrace -events round-trip and the
# -trend ledger rollup) plus a shortened -race soak, and a smoke run
# of the wall-clock benchmark harness.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (wq, exec, obs, svm) =="
go test -race ./internal/wq/ ./internal/exec/ ./internal/obs/ ./internal/svm/

echo "== go test -race (parallel experiment runner) =="
go test -race -run 'TestFastPathAndParallelRunsAreByteIdentical' ./internal/bench/

echo "== go test -race (streamd soak, shortened) =="
# The full 520-job soak runs in the plain 'go test ./...' pass above;
# -short scales it to 160 jobs so the race-instrumented run stays in
# the tens of seconds while saturation and mid-soak drain remain
# structural.
go test -race -short -run 'TestSoak' ./internal/streamd/

echo "== fuzz smoke (bitvec, wq, sim fast path) =="
go test -run='^$' -fuzz=FuzzVec -fuzztime=5s ./internal/bitvec/
go test -run='^$' -fuzz=FuzzDependencyOrder -fuzztime=5s ./internal/wq/
go test -run='^$' -fuzz=FuzzAccessBulk -fuzztime=5s ./internal/sim/

echo "== fault-matrix smoke =="
# Each fault kind against one experiment at a fixed seed; every run
# must either recover or fail with a structured RunError (exit 1 with
# a diagnosis), never panic. Run twice and byte-compare: the seeded
# schedule must replay identically.
go build -o /tmp/streamtrace.check ./cmd/streamtrace
for kind in latency_spike dropped_wakeup dropped_dep_clear enqueue_full kernel_fault poisoned_strip; do
    echo "-- $kind --"
    /tmp/streamtrace.check -app gatscat -n 50000 -fault "$kind:0.2" -faultseed 7 >/tmp/fault_a.txt 2>&1 \
        || grep -q "exec:" /tmp/fault_a.txt \
        || { echo "fault run ($kind) died without a RunError"; cat /tmp/fault_a.txt; exit 1; }
    if grep -q "panic" /tmp/fault_a.txt; then
        echo "fault run ($kind) panicked"; cat /tmp/fault_a.txt; exit 1
    fi
    /tmp/streamtrace.check -app gatscat -n 50000 -fault "$kind:0.2" -faultseed 7 >/tmp/fault_b.txt 2>&1 \
        || grep -q "exec:" /tmp/fault_b.txt \
        || { echo "fault replay ($kind) died without a RunError"; cat /tmp/fault_b.txt; exit 1; }
    cmp /tmp/fault_a.txt /tmp/fault_b.txt \
        || { echo "fault replay ($kind) not byte-identical"; exit 1; }
done
echo "== run-ledger schema + regression gate smoke =="
go build -o /tmp/streambench.check ./cmd/streambench
GATE_BASE="${TMPDIR:-/tmp}/streamgpp-gate-base.jsonl"
rm -f "$GATE_BASE"
# -repeat 5 so the median sheds the first runs' warm-up inflation: on
# a shared machine the timed runs within one invocation can decay
# 1.5x as background load settles, and a 3-sample median still
# carries that.
/tmp/streambench.check -exp quickstart -quick -repeat 5 -ledger "$GATE_BASE" >/dev/null
/tmp/streambench.check -validate "$GATE_BASE"
# An unmodified re-run must pass the gate...
/tmp/streambench.check -exp quickstart -quick -repeat 5 -compare "$GATE_BASE" >/dev/null \
    || { echo "regression gate flagged an unmodified re-run"; exit 1; }
# ...a synthetically slowed run must fail it. The multiplier is 3x,
# not just past the gate's +18% cap: cross-invocation wall-clock
# drift on a shared machine reaches ~1.6x (measured), which masked a
# 1.2x synthetic slowdown and made this smoke flaky. The gate itself
# is exercised with realistic margins by internal/obs/regress_test.go;
# this smoke only proves the CLI wiring fires end to end.
if /tmp/streambench.check -exp quickstart -quick -repeat 5 -slowdown 3 -compare "$GATE_BASE" >/dev/null 2>&1; then
    echo "regression gate failed to flag a 3x slowdown"; exit 1
fi
# ...and streamtrace's ledger entries share the same schema.
/tmp/streamtrace.check -app quickstart -n 50000 -ledger "$GATE_BASE" >/dev/null
/tmp/streambench.check -validate "$GATE_BASE"

echo "== critical-path + what-if smoke =="
# The profiler must attribute the quickstart makespan...
/tmp/streamtrace.check -app quickstart -n 50000 -critpath >/tmp/critpath.txt
grep -q "Critical path (stream run):" /tmp/critpath.txt \
    || { echo "streamtrace -critpath printed no path"; cat /tmp/critpath.txt; exit 1; }
grep -q "calibration: predicted" /tmp/critpath.txt \
    || { echo "streamtrace -critpath printed no advisor calibration"; cat /tmp/critpath.txt; exit 1; }
# ...and the what-if cross-check must hold: the identity scenario is
# exact (delta printed as exactly +0.00% on both sides) and the
# kernel-speedup prediction agrees with the simulator re-run within
# the regression-gate tolerance (streambench exits 3 on disagreement).
/tmp/streambench.check -whatif "ident,kernel=1.25" -quick -ledger "$GATE_BASE" >/tmp/whatif.txt \
    || { echo "what-if cross-check failed (analytical vs empirical disagree)"; cat /tmp/whatif.txt; exit 1; }
grep "ident" /tmp/whatif.txt | grep -q "+0.00%" \
    || { echo "identity scenario not exact"; cat /tmp/whatif.txt; exit 1; }
grep "kernel=1.25" /tmp/whatif.txt | grep -q "PASS" \
    || { echo "kernel=1.25 scenario did not pass the gate"; cat /tmp/whatif.txt; exit 1; }
/tmp/streambench.check -validate "$GATE_BASE"

echo "== fast-path coverage smoke =="
# The coverage profiler must explain the SPAS run: report a fast-path
# coverage percentage, name a dominant bail reason from the taxonomy
# (SPAS's indexed accesses make one inevitable), and attribute nonzero
# DRAM traffic with a roofline summary.
/tmp/streamtrace.check -app spas -coverage >/tmp/coverage.txt
grep -q "fast path served" /tmp/coverage.txt \
    || { echo "streamtrace -coverage printed no coverage line"; cat /tmp/coverage.txt; exit 1; }
grep -q "dominant bail: " /tmp/coverage.txt \
    || { echo "streamtrace -coverage named no dominant bail reason"; cat /tmp/coverage.txt; exit 1; }
grep -Eq "indexed|no_pin" /tmp/coverage.txt \
    || { echo "streamtrace -coverage missing known bail-reason keys"; cat /tmp/coverage.txt; exit 1; }
grep -E "DRAM" /tmp/coverage.txt | grep -Eq "[1-9][0-9]*" \
    || { echo "streamtrace -coverage attributed no DRAM bytes"; cat /tmp/coverage.txt; exit 1; }
grep -q "roofline" /tmp/coverage.txt \
    || { echo "streamtrace -coverage printed no roofline summary"; cat /tmp/coverage.txt; exit 1; }

echo "== streamd lifecycle smoke =="
# The selftest drives the full job-service lifecycle over real HTTP:
# submit the quickstart job twice and assert the second response is a
# cache hit with byte-identical output, stream a larger job over SSE
# and assert at least one mid-run progress frame preceded its done
# event, scrape /metricz, SIGTERM the process with a job in flight,
# and assert the drain finished it, rejected new work (503), and left
# a valid repairable ledger plus a complete lifecycle event log. Exit
# 0 means every assertion held.
go build -o /tmp/streamd.check ./cmd/streamd
STREAMD_LEDGER="${TMPDIR:-/tmp}/streamgpp-streamd-selftest.jsonl"
rm -f "$STREAMD_LEDGER" "$STREAMD_LEDGER.events"
/tmp/streamd.check -selftest -ledger "$STREAMD_LEDGER" >/tmp/streamd_selftest.txt 2>&1 \
    || { echo "streamd selftest failed"; cat /tmp/streamd_selftest.txt; exit 1; }
grep -q "cache hit verified" /tmp/streamd_selftest.txt \
    || { echo "streamd selftest verified no cache hit"; cat /tmp/streamd_selftest.txt; exit 1; }
grep -q "mid-run progress frames over SSE" /tmp/streamd_selftest.txt \
    || { echo "streamd selftest streamed no mid-run progress"; cat /tmp/streamd_selftest.txt; exit 1; }
grep -q "metricz scrape ok (streamd_jobs_accepted" /tmp/streamd_selftest.txt \
    || { echo "streamd selftest metricz scrape failed"; cat /tmp/streamd_selftest.txt; exit 1; }
grep -q "ledger valid" /tmp/streamd_selftest.txt \
    || { echo "streamd selftest left no valid ledger"; cat /tmp/streamd_selftest.txt; exit 1; }
grep -q "event log valid" /tmp/streamd_selftest.txt \
    || { echo "streamd selftest left no valid event log"; cat /tmp/streamd_selftest.txt; exit 1; }
# The self-observability plane must have come up inside the same run:
# the SLO report served with its objectives, a real goroutine profile
# fetched over /debug/pprof, and the post-drain goroutine-leak gate
# held (the selftest exits nonzero if the count never settles).
grep -q "selftest sloz ok" /tmp/streamd_selftest.txt \
    || { echo "streamd selftest served no SLO report"; cat /tmp/streamd_selftest.txt; exit 1; }
grep -q "selftest pprof profile fetched" /tmp/streamd_selftest.txt \
    || { echo "streamd selftest fetched no pprof profile"; cat /tmp/streamd_selftest.txt; exit 1; }
grep -q "goroutine-leak gate ok" /tmp/streamd_selftest.txt \
    || { echo "streamd selftest goroutine-leak gate did not run"; cat /tmp/streamd_selftest.txt; exit 1; }
# The persisted event JSONL must round-trip through the streamtrace
# pretty-printer: a table with the lifecycle edges and no torn tail.
go build -o /tmp/streamtrace.check ./cmd/streamtrace
/tmp/streamtrace.check -events "$STREAMD_LEDGER.events" >/tmp/streamd_events.txt 2>&1 \
    || { echo "streamtrace -events failed on the selftest log"; cat /tmp/streamd_events.txt; exit 1; }
grep -q "terminal" /tmp/streamd_events.txt \
    || { echo "event log pretty-print shows no terminal edge"; cat /tmp/streamd_events.txt; exit 1; }
grep -q "events over" /tmp/streamd_events.txt \
    || { echo "event log pretty-print incomplete"; cat /tmp/streamd_events.txt; exit 1; }
if grep -q "torn final line" /tmp/streamd_events.txt; then
    echo "selftest event log has a torn tail"; cat /tmp/streamd_events.txt; exit 1
fi
# The same ledger must roll up into a trend report (too few runs per
# experiment here to flag anomalies — the smoke proves the wiring).
/tmp/streamtrace.check -trend "$STREAMD_LEDGER" >/tmp/streamd_trend.txt 2>&1 \
    || { echo "streamtrace -trend failed on the selftest ledger"; cat /tmp/streamd_trend.txt; exit 1; }
grep -q "wall_ns" /tmp/streamd_trend.txt \
    || { echo "trend report shows no wall_ns series"; cat /tmp/streamd_trend.txt; exit 1; }

rm -f "$GATE_BASE" "$STREAMD_LEDGER" "$STREAMD_LEDGER.events" /tmp/streambench.check /tmp/streamd.check /tmp/streamd_selftest.txt /tmp/streamd_events.txt /tmp/streamd_trend.txt
rm -f /tmp/streamtrace.check /tmp/fault_a.txt /tmp/fault_b.txt /tmp/critpath.txt /tmp/whatif.txt /tmp/coverage.txt

echo "== scripts/bench.sh smoke =="
sh scripts/bench.sh smoke

echo "OK"
