#!/bin/sh
# Repo health check: vet, build, full tests, the race detector over
# the instrumented packages (wq, exec, obs, svm) plus the parallel
# experiment runner, the fault matrix, a smoke of the run-ledger schema
# and the regression gate (a clean re-run must pass, a synthetically
# slowed run must fail), and a smoke run of the wall-clock benchmark
# harness.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (wq, exec, obs, svm) =="
go test -race ./internal/wq/ ./internal/exec/ ./internal/obs/ ./internal/svm/

echo "== go test -race (parallel experiment runner) =="
go test -race -run 'TestFastPathAndParallelRunsAreByteIdentical' ./internal/bench/

echo "== fuzz smoke (bitvec, wq) =="
go test -run='^$' -fuzz=FuzzVec -fuzztime=5s ./internal/bitvec/
go test -run='^$' -fuzz=FuzzDependencyOrder -fuzztime=5s ./internal/wq/

echo "== fault-matrix smoke =="
# Each fault kind against one experiment at a fixed seed; every run
# must either recover or fail with a structured RunError (exit 1 with
# a diagnosis), never panic. Run twice and byte-compare: the seeded
# schedule must replay identically.
go build -o /tmp/streamtrace.check ./cmd/streamtrace
for kind in latency_spike dropped_wakeup dropped_dep_clear enqueue_full kernel_fault poisoned_strip; do
    echo "-- $kind --"
    /tmp/streamtrace.check -app gatscat -n 50000 -fault "$kind:0.2" -faultseed 7 >/tmp/fault_a.txt 2>&1 \
        || grep -q "exec:" /tmp/fault_a.txt \
        || { echo "fault run ($kind) died without a RunError"; cat /tmp/fault_a.txt; exit 1; }
    if grep -q "panic" /tmp/fault_a.txt; then
        echo "fault run ($kind) panicked"; cat /tmp/fault_a.txt; exit 1
    fi
    /tmp/streamtrace.check -app gatscat -n 50000 -fault "$kind:0.2" -faultseed 7 >/tmp/fault_b.txt 2>&1 \
        || grep -q "exec:" /tmp/fault_b.txt \
        || { echo "fault replay ($kind) died without a RunError"; cat /tmp/fault_b.txt; exit 1; }
    cmp /tmp/fault_a.txt /tmp/fault_b.txt \
        || { echo "fault replay ($kind) not byte-identical"; exit 1; }
done
echo "== run-ledger schema + regression gate smoke =="
go build -o /tmp/streambench.check ./cmd/streambench
GATE_BASE="${TMPDIR:-/tmp}/streamgpp-gate-base.jsonl"
rm -f "$GATE_BASE"
/tmp/streambench.check -exp quickstart -quick -repeat 3 -ledger "$GATE_BASE" >/dev/null
/tmp/streambench.check -validate "$GATE_BASE"
# An unmodified re-run must pass the gate...
/tmp/streambench.check -exp quickstart -quick -repeat 3 -compare "$GATE_BASE" >/dev/null \
    || { echo "regression gate flagged an unmodified re-run"; exit 1; }
# ...a synthetically slowed run must fail it...
if /tmp/streambench.check -exp quickstart -quick -repeat 3 -slowdown 1.2 -compare "$GATE_BASE" >/dev/null 2>&1; then
    echo "regression gate failed to flag a 20% slowdown"; exit 1
fi
# ...and streamtrace's ledger entries share the same schema.
/tmp/streamtrace.check -app quickstart -n 50000 -ledger "$GATE_BASE" >/dev/null
/tmp/streambench.check -validate "$GATE_BASE"
rm -f "$GATE_BASE" /tmp/streambench.check
rm -f /tmp/streamtrace.check /tmp/fault_a.txt /tmp/fault_b.txt

echo "== scripts/bench.sh smoke =="
sh scripts/bench.sh smoke

echo "OK"
