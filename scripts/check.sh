#!/bin/sh
# Repo health check: vet, build, full tests, the race detector over
# the packages whose instrumentation relies on the sim engine's
# virtual-time serialisation (wq, exec, obs, svm) plus the parallel
# experiment runner, and a smoke run of the wall-clock benchmark
# harness.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (wq, exec, obs, svm) =="
go test -race ./internal/wq/ ./internal/exec/ ./internal/obs/ ./internal/svm/

echo "== go test -race (parallel experiment runner) =="
go test -race -run 'TestFastPathAndParallelRunsAreByteIdentical' ./internal/bench/

echo "== fuzz smoke (bitvec, wq) =="
go test -run='^$' -fuzz=FuzzVec -fuzztime=5s ./internal/bitvec/
go test -run='^$' -fuzz=FuzzDependencyOrder -fuzztime=5s ./internal/wq/

echo "== fault-matrix smoke =="
# Each fault kind against one experiment at a fixed seed; every run
# must either recover or fail with a structured RunError (exit 1 with
# a diagnosis), never panic. Run twice and byte-compare: the seeded
# schedule must replay identically.
go build -o /tmp/streamtrace.check ./cmd/streamtrace
for kind in latency_spike dropped_wakeup dropped_dep_clear enqueue_full kernel_fault poisoned_strip; do
    echo "-- $kind --"
    /tmp/streamtrace.check -app gatscat -n 50000 -fault "$kind:0.2" -faultseed 7 >/tmp/fault_a.txt 2>&1 \
        || grep -q "exec:" /tmp/fault_a.txt \
        || { echo "fault run ($kind) died without a RunError"; cat /tmp/fault_a.txt; exit 1; }
    if grep -q "panic" /tmp/fault_a.txt; then
        echo "fault run ($kind) panicked"; cat /tmp/fault_a.txt; exit 1
    fi
    /tmp/streamtrace.check -app gatscat -n 50000 -fault "$kind:0.2" -faultseed 7 >/tmp/fault_b.txt 2>&1 \
        || grep -q "exec:" /tmp/fault_b.txt \
        || { echo "fault replay ($kind) died without a RunError"; cat /tmp/fault_b.txt; exit 1; }
    cmp /tmp/fault_a.txt /tmp/fault_b.txt \
        || { echo "fault replay ($kind) not byte-identical"; exit 1; }
done
rm -f /tmp/streamtrace.check /tmp/fault_a.txt /tmp/fault_b.txt

echo "== scripts/bench.sh smoke =="
sh scripts/bench.sh smoke

echo "OK"
