#!/bin/sh
# Measures the simulator's wall-clock performance on the fig5/fig9/fig11
# benchmarks, with the bulk fast path on and off (same binary, selected
# via STREAMGPP_FASTPATH), and writes BENCH_wallclock.json: per
# benchmark, the best ns/op of each mode, the simulated cycles per
# iteration, the simulated-cycles-per-second throughput, and the
# fast-path speedup.
#
# If STREAMGPP_BASELINE_BIN names a `go test -c` binary built from an
# older tree (e.g. via `git worktree add /tmp/base <ref>`), it is run
# interleaved with the current one and each record additionally gets
# baseline_ns_per_op and speedup_vs_baseline — wall-clock before/after
# across commits, with machine noise hitting all modes alike.
#
# A full run also appends one run-ledger line per benchmark (the JSONL
# schema of internal/obs/ledger.go, keyed by `git describe`) to
# BENCH_history.jsonl, so wall-clock history accumulates across commits
# and `streambench -compare`/`-validate` can consume it. Each history
# line carries coverage.fastpath_pct and fastpath_speedup metrics plus
# the simulator process's runtime.heap_inuse_bytes and
# runtime.gc_pause_p99_ns (from the benchmarks' runtime collector
# sample), so `streamtrace -trend` can flag memory or GC regressions
# alongside wall-clock ones, and
# a full run exits 3 if any benchmark's fast path measures >5% slower
# than the reference path in the same binary. Smoke runs leave the
# history untouched and skip the gate.
#
# Usage:
#   scripts/bench.sh          # the measured set (a few minutes)
#   scripts/bench.sh smoke    # one tiny benchmark, for check.sh
set -eu
cd "$(dirname "$0")/.."

MODE="${1:-full}"
OUT="BENCH_wallclock.json"
case "$MODE" in
smoke | --smoke)
	PAT='^BenchmarkFig9LDSTCompLow$'
	TIME=1x
	COUNT=1
	# A smoke run only proves the harness works; don't clobber the
	# checked-in measurement.
	OUT="${TMPDIR:-/tmp}/BENCH_wallclock.smoke.json"
	;;
*)
	PAT='^(BenchmarkFig5Bandwidth|BenchmarkFig9LDSTCompLow|BenchmarkFig9GATSCATLow|BenchmarkFig9PRODCONLow|BenchmarkFig11aFEMEulerLin|BenchmarkFig11bCDP4n8192|BenchmarkFig11cNeo|BenchmarkFig11dSPASLarge)$'
	TIME=3x
	COUNT=3
	;;
esac
BIN="$(mktemp /tmp/streamgpp-bench.XXXXXX)"
ON="$(mktemp /tmp/streamgpp-on.XXXXXX)"
OFF="$(mktemp /tmp/streamgpp-off.XXXXXX)"
BASE="$(mktemp /tmp/streamgpp-base.XXXXXX)"
trap 'rm -f "$BIN" "$ON" "$OFF" "$BASE"' EXIT

go test -c -o "$BIN" .

# Interleave the modes count times so machine noise hits all alike.
: >"$ON"
: >"$OFF"
: >"$BASE"
i=0
while [ "$i" -lt "$COUNT" ]; do
	"$BIN" -test.run '^$' -test.bench "$PAT" -test.benchtime "$TIME" >>"$ON"
	STREAMGPP_FASTPATH=off "$BIN" -test.run '^$' -test.bench "$PAT" -test.benchtime "$TIME" >>"$OFF"
	if [ -n "${STREAMGPP_BASELINE_BIN:-}" ]; then
		"$STREAMGPP_BASELINE_BIN" -test.run '^$' -test.bench "$PAT" -test.benchtime "$TIME" >>"$BASE"
	fi
	i=$((i + 1))
done

awk -v onfile="$ON" -v offfile="$OFF" -v basefile="$BASE" '
function ingest(file, best, cyc, cov,    n, i, name, ns, c, cv, hp, gp, line, f) {
	while ((getline line <file) > 0) {
		n = split(line, f, /[ \t]+/)
		if (f[1] !~ /^Benchmark/) continue
		name = f[1]
		sub(/-[0-9]+$/, "", name)
		ns = -1; c = -1; cv = -1; hp = -1; gp = -1
		for (i = 3; i <= n; i++) {
			if (f[i] == "ns/op") ns = f[i-1]
			if (f[i] == "sim-cycles") c = f[i-1]
			if (f[i] == "fastpath-cov-pct") cv = f[i-1]
			if (f[i] == "heap-inuse-bytes") hp = f[i-1]
			if (f[i] == "gc-pause-p99-ns") gp = f[i-1]
		}
		if (ns < 0) continue
		if (!(name in best) || ns < best[name]) best[name] = ns
		if (c >= 0) cyc[name] = c
		if (cv >= 0) cov[name] = cv
		# Runtime samples only matter for the fast-path binary under
		# measurement; keep the last sample per benchmark.
		if (file == onfile) {
			if (hp >= 0) heap[name] = hp
			if (gp >= 0) gcp99[name] = gp
		}
		order[++norder] = name
	}
	close(file)
}
BEGIN {
	norder = 0
	ingest(onfile, on, cycles, covpct)
	ingest(offfile, off, cycles, covoff)
	ingest(basefile, base, basecycles, covbase)
	printf "[\n"
	first = 1
	for (i = 1; i <= norder; i++) {
		name = order[i]
		if (name in done) continue
		done[name] = 1
		if (!first) printf ",\n"
		first = 0
		printf "  {\"benchmark\": \"%s\"", name
		printf ", \"fast_ns_per_op\": %.0f", on[name]
		printf ", \"reference_ns_per_op\": %.0f", off[name]
		if (off[name] > 0 && on[name] > 0)
			printf ", \"fastpath_speedup\": %.2f", off[name] / on[name]
		if (name in cycles) {
			printf ", \"sim_cycles\": %.0f", cycles[name]
			if (on[name] > 0)
				printf ", \"sim_cycles_per_sec\": %.0f", cycles[name] * 1e9 / on[name]
		}
		if (name in covpct)
			printf ", \"fastpath_coverage_pct\": %.2f", covpct[name]
		if (name in heap)
			printf ", \"heap_inuse_bytes\": %.0f", heap[name]
		if (name in gcp99)
			printf ", \"gc_pause_p99_ns\": %.0f", gcp99[name]
		if (name in base) {
			printf ", \"baseline_ns_per_op\": %.0f", base[name]
			if (on[name] > 0)
				printf ", \"speedup_vs_baseline\": %.2f", base[name] / on[name]
		}
		printf "}"
	}
	printf "\n]\n"
}' >"$OUT"

echo "wrote $OUT:"
cat "$OUT"

if [ "$MODE" != "smoke" ] && [ "$MODE" != "--smoke" ]; then
	HIST="BENCH_history.jsonl"
	COMMIT="$(git describe --always --dirty 2>/dev/null || echo unknown)"
	NOW="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	awk -v commit="$COMMIT" -v now="$NOW" '
	/"benchmark"/ {
		name = ""; ns = ""; cyc = ""; cps = ""; cov = ""; spd = ""; hp = ""; gp = ""
		if (match($0, /"benchmark": "[^"]+"/)) name = substr($0, RSTART + 14, RLENGTH - 15)
		if (match($0, /"fast_ns_per_op": [0-9]+/)) ns = substr($0, RSTART + 18, RLENGTH - 18)
		if (match($0, /"sim_cycles": [0-9]+/)) cyc = substr($0, RSTART + 14, RLENGTH - 14)
		if (match($0, /"sim_cycles_per_sec": [0-9]+/)) cps = substr($0, RSTART + 22, RLENGTH - 22)
		if (match($0, /"fastpath_coverage_pct": [0-9.]+/)) cov = substr($0, RSTART + 25, RLENGTH - 25)
		if (match($0, /"fastpath_speedup": [0-9.]+/)) spd = substr($0, RSTART + 20, RLENGTH - 20)
		if (match($0, /"heap_inuse_bytes": [0-9]+/)) hp = substr($0, RSTART + 20, RLENGTH - 20)
		if (match($0, /"gc_pause_p99_ns": [0-9]+/)) gp = substr($0, RSTART + 19, RLENGTH - 19)
		if (name == "" || ns == "") next
		printf "{\"schema\":2,\"time\":\"%s\",\"experiment\":\"%s\",\"commit\":\"%s\",\"fast_path\":true,\"wall_ns\":%s", now, name, commit, ns
		if (cyc != "") printf ",\"sim_cycles\":%s", cyc
		if (cps != "") printf ",\"sim_cycles_per_sec\":%s", cps
		metrics = ""
		if (cov != "") metrics = "\"coverage.fastpath_pct\":" cov
		if (spd != "") metrics = metrics (metrics == "" ? "" : ",") "\"fastpath_speedup\":" spd
		if (hp != "") metrics = metrics (metrics == "" ? "" : ",") "\"runtime.heap_inuse_bytes\":" hp
		if (gp != "") metrics = metrics (metrics == "" ? "" : ",") "\"runtime.gc_pause_p99_ns\":" gp
		if (metrics != "") printf ",\"metrics\":{%s}", metrics
		printf ",\"source\":\"bench.sh\"}\n"
	}' "$OUT" >>"$HIST"
	echo "appended $(grep -c "\"time\":\"$NOW\"" "$HIST") entries to $HIST (commit $COMMIT)"

	# Gate: the fast path must not lose to the reference path in its own
	# binary. Both modes ran interleaved on this machine moments apart,
	# so a >5% deficit is signal, not noise — fail loudly (exit 3, the
	# regression-gate exit code) naming the offenders.
	LOSERS="$(awk '
	/"benchmark"/ {
		name = ""; spd = ""
		if (match($0, /"benchmark": "[^"]+"/)) name = substr($0, RSTART + 14, RLENGTH - 15)
		if (match($0, /"fastpath_speedup": [0-9.]+/)) spd = substr($0, RSTART + 20, RLENGTH - 20)
		if (name != "" && spd != "" && spd + 0 < 0.95)
			printf "%s (%.2fx)\n", name, spd
	}' "$OUT")"
	if [ -n "$LOSERS" ]; then
		echo "FAIL: fast path >5% slower than reference on:" >&2
		echo "$LOSERS" >&2
		exit 3
	fi
fi
